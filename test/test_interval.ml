module I = Ivc.Interval

let mk s l = I.make ~start:s ~len:l

let test_make_and_accessors () =
  let t = mk 3 4 in
  Alcotest.(check int) "start" 3 t.I.start;
  Alcotest.(check int) "len" 4 t.I.len;
  Alcotest.(check int) "finish" 7 (I.finish t);
  Alcotest.(check bool) "not empty" false (I.is_empty t);
  Alcotest.(check bool) "empty" true (I.is_empty (mk 5 0))

let test_make_rejects () =
  Alcotest.check_raises "negative start" (Invalid_argument "Interval.make: negative start")
    (fun () -> ignore (mk (-1) 2));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Interval.make: negative length") (fun () -> ignore (mk 0 (-2)))

let test_disjoint () =
  Alcotest.(check bool) "abutting are disjoint" true (I.disjoint (mk 0 3) (mk 3 2));
  Alcotest.(check bool) "overlap" false (I.disjoint (mk 0 3) (mk 2 2));
  Alcotest.(check bool) "nested" false (I.disjoint (mk 0 10) (mk 3 2));
  Alcotest.(check bool) "identical" false (I.disjoint (mk 4 2) (mk 4 2));
  Alcotest.(check bool) "empty vs anything" true (I.disjoint (mk 2 0) (mk 0 10));
  Alcotest.(check bool) "anything vs empty" true (I.disjoint (mk 0 10) (mk 2 0))

let test_contains () =
  let t = mk 2 3 in
  Alcotest.(check bool) "below" false (I.contains t 1);
  Alcotest.(check bool) "low end" true (I.contains t 2);
  Alcotest.(check bool) "inside" true (I.contains t 4);
  Alcotest.(check bool) "high end excluded" false (I.contains t 5)

let test_compare_and_print () =
  Alcotest.(check bool) "order by start" true (I.compare_start (mk 1 5) (mk 2 1) < 0);
  Alcotest.(check bool) "tie by len" true (I.compare_start (mk 1 2) (mk 1 5) < 0);
  Alcotest.(check string) "to_string" "[2,5)" (I.to_string (mk 2 3));
  Alcotest.(check string) "pp" "[0,0)" (Format.asprintf "%a" I.pp (mk 0 0))

let gen_interval =
  QCheck2.Gen.(
    let* s = int_range 0 30 in
    let* l = int_range 0 10 in
    pure (s, l))

let prop_disjoint_symmetric =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"disjoint is symmetric" ~count:500
       QCheck2.Gen.(pair gen_interval gen_interval)
       (fun ((s1, l1), (s2, l2)) ->
         let a = mk s1 l1 and b = mk s2 l2 in
         I.disjoint a b = I.disjoint b a))

let prop_disjoint_means_no_common_color =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"disjoint iff no shared color" ~count:500
       QCheck2.Gen.(pair gen_interval gen_interval)
       (fun ((s1, l1), (s2, l2)) ->
         let a = mk s1 l1 and b = mk s2 l2 in
         let shared = ref false in
         for c = 0 to 45 do
           if I.contains a c && I.contains b c then shared := true
         done;
         I.disjoint a b = not !shared))

let suite =
  [
    Alcotest.test_case "make and accessors" `Quick test_make_and_accessors;
    Alcotest.test_case "make rejects bad input" `Quick test_make_rejects;
    Alcotest.test_case "disjoint" `Quick test_disjoint;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "compare and print" `Quick test_compare_and_print;
    prop_disjoint_symmetric;
    prop_disjoint_means_no_common_color;
  ]
