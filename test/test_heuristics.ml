module S = Ivc_grid.Stencil
module H = Ivc.Heuristics

let all_heuristics =
  [
    ("GLL", H.gll); ("GZO", H.gzo); ("GLF", H.glf); ("GKF", H.gkf); ("SGK", H.sgk);
  ]

let test_all_valid_fixed_2d () =
  let inst = Util.random_inst2 ~seed:1 ~x:7 ~y:6 ~bound:25 in
  List.iter
    (fun (name, h) ->
      let starts = h inst in
      Alcotest.(check bool) (name ^ " valid") true (Ivc.Coloring.is_valid inst starts);
      Alcotest.(check bool)
        (name ^ " at least the clique bound")
        true
        (Util.maxcolor inst starts >= Ivc.Bounds.clique_lb inst))
    all_heuristics

let test_all_valid_fixed_3d () =
  let inst = Util.random_inst3 ~seed:2 ~x:4 ~y:3 ~z:4 ~bound:12 in
  List.iter
    (fun (name, h) ->
      let starts = h inst in
      Alcotest.(check bool) (name ^ " valid 3d") true (Ivc.Coloring.is_valid inst starts))
    all_heuristics

let test_largest_first_order () =
  let inst = S.make2 ~x:2 ~y:2 [| 1; 9; 3; 9 |] in
  Alcotest.(check (array int)) "sorted by weight, ties by id" [| 1; 3; 2; 0 |]
    (H.largest_first_order inst)

let test_clique_order () =
  let inst = S.make2 ~x:2 ~y:3 [| 1; 1; 9; 1; 1; 9 |] in
  let cliques = H.clique_order inst in
  Alcotest.(check int) "two blocks" 2 (Array.length cliques);
  Alcotest.(check int) "heaviest first" 20 (S.weight_sum inst cliques.(0));
  Alcotest.(check int) "lighter second" 4 (S.weight_sum inst cliques.(1))

let test_determinism () =
  let inst = Util.random_inst2 ~seed:9 ~x:6 ~y:6 ~bound:20 in
  List.iter
    (fun (name, h) ->
      Alcotest.(check (array int)) (name ^ " deterministic") (h inst) (h inst))
    all_heuristics

let test_gll_unit_weights () =
  (* unit weights: interval coloring = classic coloring; a 9-pt stencil
     is 4-colorable by the 2x2 tiling and greedy row-major achieves it *)
  let inst = S.init2 ~x:6 ~y:6 (fun _ _ -> 1) in
  Alcotest.(check int) "4 colors" 4 (Util.maxcolor inst (H.gll inst))

let test_sgk_beats_or_ties_gkf_on_k4 () =
  (* inside a single K4, trying permutations cannot be worse *)
  let inst = S.make2 ~x:2 ~y:2 [| 7; 3; 5; 2 |] in
  let gkf = Util.maxcolor inst (H.gkf inst) in
  let sgk = Util.maxcolor inst (H.sgk inst) in
  Alcotest.(check bool) "sgk <= gkf on one clique" true (sgk <= gkf);
  (* a single K4 is a clique: both must hit the exact sum *)
  Alcotest.(check int) "optimal" 17 sgk

let test_zero_weight_instances () =
  let inst = S.init2 ~x:4 ~y:4 (fun _ _ -> 0) in
  List.iter
    (fun (name, h) ->
      let starts = h inst in
      Alcotest.(check int) (name ^ " zero colors") 0 (Util.maxcolor inst starts))
    all_heuristics

let prop_all_valid_2d =
  Util.qtest ~count:60 "heuristics valid on random 2D" Util.gen_inst2 (fun inst ->
      List.for_all
        (fun (_, h) -> Ivc.Coloring.is_valid inst (h inst))
        all_heuristics)

let prop_all_valid_3d =
  Util.qtest ~count:30 "heuristics valid on random 3D" Util.gen_inst3 (fun inst ->
      List.for_all
        (fun (_, h) -> Ivc.Coloring.is_valid inst (h inst))
        all_heuristics)

let prop_above_lower_bound =
  Util.qtest ~count:60 "heuristics above the clique bound" Util.gen_inst2
    (fun inst ->
      let lb = Ivc.Bounds.clique_lb inst in
      List.for_all (fun (_, h) -> Util.maxcolor inst (h inst) >= lb) all_heuristics)

let test_algo_registry () =
  Alcotest.(check (list string)) "names"
    [ "GLL"; "GZO"; "GLF"; "GKF"; "SGK"; "BD"; "BDP" ]
    Ivc.Algo.names;
  Alcotest.(check bool) "find is case-insensitive" true
    (match Ivc.Algo.find "bdp" with Some a -> a.Ivc.Algo.name = "BDP" | None -> false);
  Alcotest.(check bool) "find unknown" true (Ivc.Algo.find "nope" = None);
  let inst = Util.random_inst2 ~seed:21 ~x:4 ~y:4 ~bound:9 in
  let results = Ivc.Algo.run_all inst in
  Alcotest.(check int) "runs all" 7 (List.length results);
  List.iter
    (fun (name, starts, mc) ->
      Alcotest.(check bool) (name ^ " valid via registry") true
        (Ivc.Coloring.is_valid inst starts);
      Alcotest.(check int) (name ^ " maxcolor consistent") mc
        (Util.maxcolor inst starts))
    results

let suite =
  [
    Alcotest.test_case "all valid on fixed 2D" `Quick test_all_valid_fixed_2d;
    Alcotest.test_case "all valid on fixed 3D" `Quick test_all_valid_fixed_3d;
    Alcotest.test_case "largest-first order" `Quick test_largest_first_order;
    Alcotest.test_case "clique order" `Quick test_clique_order;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "unit weights need 4 colors" `Quick test_gll_unit_weights;
    Alcotest.test_case "SGK on a single K4" `Quick test_sgk_beats_or_ties_gkf_on_k4;
    Alcotest.test_case "all-zero instances" `Quick test_zero_weight_instances;
    Alcotest.test_case "registry" `Quick test_algo_registry;
    prop_all_valid_2d;
    prop_all_valid_3d;
    prop_above_lower_bound;
  ]
