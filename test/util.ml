(* Shared helpers for the test-suite. *)

module S = Ivc_grid.Stencil

let check_valid inst starts =
  Alcotest.(check bool) "coloring is valid" true (Ivc.Coloring.is_valid inst starts)

let maxcolor inst starts = Ivc.Coloring.maxcolor ~w:(inst : S.t).w starts

(* Deterministic pseudo-random weights. *)
let weights_of_seed seed n bound =
  let rng = Spatial_data.Rng.create (seed + 77) in
  Array.init n (fun _ -> Spatial_data.Rng.int rng bound)

let random_inst2 ~seed ~x ~y ~bound =
  S.make2 ~x ~y (weights_of_seed seed (x * y) bound)

let random_inst3 ~seed ~x ~y ~z ~bound =
  S.make3 ~x ~y ~z (weights_of_seed seed (x * y * z) bound)

(* qcheck generators for small instances, defined over the fuzzer's
   seeded generators so qcheck properties and fuzz campaigns exercise
   the same instance distribution (and a qcheck counterexample is a
   single seed, replayable through Ivc_check). *)
let gen_inst2 =
  QCheck2.Gen.(int_range 0 1_000_000 >|= fun seed -> Ivc_check.Gen.small2 ~seed)

let gen_inst3 =
  QCheck2.Gen.(int_range 0 1_000_000 >|= fun seed -> Ivc_check.Gen.small3 ~seed)

(* Seeded delta streams for the incremental and streaming tests,
   drawn from the fuzzer's generator instead of ad-hoc weight
   mutation: a failing qcheck case prints the one seed that replays
   the exact stream through Ivc_check.Gen.delta_stream. *)
let deltas_of_seed ?length ~seed inst =
  Ivc_check.Gen.delta_stream ?length ~seed inst

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

let qtest_seed ?(count = 100) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count
       ~print:(Printf.sprintf "delta seed %d")
       gen_seed f)

(* Worker counts for Domain-spawning tests. The CI container may have
   a single CPU; requesting many domains there just adds scheduler
   noise and timing flakiness. Honor IVC_TEST_WORKERS when set,
   otherwise follow the runtime's recommendation, clamped to [1, max]. *)
let workers ?(max = 4) () =
  let requested =
    match Option.bind (Sys.getenv_opt "IVC_TEST_WORKERS") int_of_string_opt with
    | Some n when n >= 1 -> n
    | _ -> Domain.recommended_domain_count ()
  in
  Stdlib.min max (Stdlib.max 1 requested)

(* Run an oracle from the fuzz registry as an alcotest/qcheck check:
   Pass is [true], Fail raises with the oracle's diagnosis. *)
let oracle_holds (o : Ivc_check.Oracle.t) inst =
  match o.Ivc_check.Oracle.run inst with
  | Ivc_check.Oracle.Pass -> true
  | Ivc_check.Oracle.Fail msg ->
      Alcotest.failf "oracle %s: %s" o.Ivc_check.Oracle.name msg

let print_inst inst = Format.asprintf "%a" S.pp inst

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:print_inst gen f)
