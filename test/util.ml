(* Shared helpers for the test-suite. *)

module S = Ivc_grid.Stencil

let check_valid inst starts =
  Alcotest.(check bool) "coloring is valid" true (Ivc.Coloring.is_valid inst starts)

let maxcolor inst starts = Ivc.Coloring.maxcolor ~w:(inst : S.t).w starts

(* Deterministic pseudo-random weights. *)
let weights_of_seed seed n bound =
  let rng = Spatial_data.Rng.create (seed + 77) in
  Array.init n (fun _ -> Spatial_data.Rng.int rng bound)

let random_inst2 ~seed ~x ~y ~bound =
  S.make2 ~x ~y (weights_of_seed seed (x * y) bound)

let random_inst3 ~seed ~x ~y ~z ~bound =
  S.make3 ~x ~y ~z (weights_of_seed seed (x * y * z) bound)

(* qcheck generator for small 2D instances *)
let gen_inst2 =
  QCheck2.Gen.(
    let* x = int_range 2 6 in
    let* y = int_range 2 6 in
    let* w = array_size (pure (x * y)) (int_range 0 15) in
    pure (S.make2 ~x ~y w))

let gen_inst3 =
  QCheck2.Gen.(
    let* x = int_range 2 4 in
    let* y = int_range 2 4 in
    let* z = int_range 2 3 in
    let* w = array_size (pure (x * y * z)) (int_range 0 9) in
    pure (S.make3 ~x ~y ~z w))

let print_inst inst = Format.asprintf "%a" S.pp inst

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:print_inst gen f)
