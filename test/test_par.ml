module S = Ivc_grid.Stencil
module Dag = Taskpar.Dag
module Sim = Taskpar.Sim
module Pool = Taskpar.Pool

let unit_inst x y = S.init2 ~x ~y (fun _ _ -> 1)

let dag_of inst =
  let starts = Ivc.Heuristics.gll inst in
  Dag.of_coloring inst ~starts ~cost:(fun v -> Float.of_int (S.weight inst v))

let test_dag_structure () =
  let inst = unit_inst 3 3 in
  let dag = dag_of inst in
  Alcotest.(check int) "tasks" 9 dag.Dag.n;
  Alcotest.(check bool) "acyclic" true (Dag.is_acyclic dag);
  (* every stencil edge is oriented exactly once *)
  let m = ref 0 in
  Array.iter (fun succ -> m := !m + Array.length succ) dag.Dag.succ;
  Alcotest.(check int) "edges oriented once" 20 !m;
  Alcotest.(check (float 1e-9)) "total work" 9.0 (Dag.total_work dag)

let test_critical_path_chain () =
  (* a 2x1 or chain-like: critical path of a clique DAG = total weight *)
  let inst = S.make2 ~x:2 ~y:2 [| 3; 2; 1; 4 |] in
  let starts, _ = Ivc.Special.color_clique ~w:(inst : S.t).w in
  let dag = Dag.of_coloring inst ~starts ~cost:(fun v -> Float.of_int (S.weight inst v)) in
  Alcotest.(check (float 1e-9)) "K4 path is the sum" 10.0 (Dag.critical_path dag)

let test_critical_path_parallel () =
  (* two independent heavy vertices: critical path = max, not sum *)
  let inst = S.make2 ~x:2 ~y:4 (* (i,j): far-apart columns *) [| 5; 0; 0; 7; 5; 0; 0; 7 |] in
  let starts = Ivc.Heuristics.glf inst in
  let dag = Dag.of_coloring inst ~starts ~cost:(fun v -> Float.of_int (S.weight inst v)) in
  Alcotest.(check bool) "critical path below total" true
    (Dag.critical_path dag < Dag.total_work dag)

let test_sim_single_worker_serializes () =
  let inst = unit_inst 3 3 in
  let dag = dag_of inst in
  let sch = Sim.run dag ~workers:1 in
  Alcotest.(check (float 1e-9)) "makespan = total work" (Dag.total_work dag)
    sch.Sim.makespan

let test_sim_more_workers_never_slower () =
  let inst = Util.random_inst2 ~seed:33 ~x:6 ~y:6 ~bound:9 in
  let starts = Ivc.Bipartite_decomp.bdp inst in
  let dag = Dag.of_coloring inst ~starts ~cost:(fun v -> Float.of_int (1 + S.weight inst v)) in
  let m1 = (Sim.run dag ~workers:1).Sim.makespan in
  let m2 = (Sim.run dag ~workers:2).Sim.makespan in
  let m6 = (Sim.run dag ~workers:6).Sim.makespan in
  Alcotest.(check bool) "2 workers help" true (m2 <= m1);
  Alcotest.(check bool) "6 workers help more-or-equal" true (m6 <= m2);
  Alcotest.(check bool) "critical path floors makespan" true
    (m6 >= Dag.critical_path dag -. 1e-9)

let test_sim_respects_dependencies () =
  let inst = unit_inst 2 2 in
  let starts, _ = Ivc.Special.color_clique ~w:(inst : S.t).w in
  let dag = Dag.of_coloring inst ~starts ~cost:(fun _ -> 1.0) in
  let sch = Sim.run dag ~workers:4 in
  (* K4: all tasks serialized regardless of 4 workers *)
  Alcotest.(check (float 1e-9)) "K4 serializes" 4.0 sch.Sim.makespan;
  Alcotest.(check bool) "idle time accounted" true (sch.Sim.idle_time > 0.0)

let test_sim_bandwidth_penalty () =
  let inst = unit_inst 4 4 in
  let dag = dag_of inst in
  let fast = (Sim.run dag ~workers:4).Sim.makespan in
  let slow = (Sim.run ~bandwidth_penalty:0.5 dag ~workers:4).Sim.makespan in
  Alcotest.(check bool) "penalty slows concurrency" true (slow >= fast)

let test_pool_executes_all_once () =
  let inst = unit_inst 4 4 in
  let dag = dag_of inst in
  let hits = Array.make dag.Dag.n 0 in
  let _ = Pool.run dag ~workers:(Util.workers ~max:2 ()) ~work:(fun v -> hits.(v) <- hits.(v) + 1) in
  Alcotest.(check (array int)) "each task once" (Array.make dag.Dag.n 1) hits

let test_pool_checked_no_conflicts () =
  let inst = Util.random_inst2 ~seed:34 ~x:5 ~y:5 ~bound:5 in
  let starts = Ivc.Heuristics.glf inst in
  let dag = Dag.of_coloring inst ~starts ~cost:(fun _ -> 1.0) in
  let conflicts u v =
    let adj = ref false in
    S.iter_neighbors inst u (fun x -> if x = v then adj := true);
    !adj
  in
  let work _ =
    (* a little spin so overlaps would be observable *)
    let acc = ref 0 in
    for i = 1 to 2_000 do
      acc := !acc + i
    done;
    ignore !acc
  in
  let _, violations = Pool.run_checked dag ~workers:(Util.workers ()) ~work ~conflicts in
  Alcotest.(check int) "no conflicting overlap" 0 violations

let test_pool_rejects_zero_workers () =
  let dag = dag_of (unit_inst 2 2) in
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Pool.run: need at least one worker") (fun () ->
      ignore (Pool.run dag ~workers:0 ~work:ignore))

let suite =
  [
    Alcotest.test_case "dag structure" `Quick test_dag_structure;
    Alcotest.test_case "critical path on K4" `Quick test_critical_path_chain;
    Alcotest.test_case "critical path parallelism" `Quick test_critical_path_parallel;
    Alcotest.test_case "sim: one worker serializes" `Quick test_sim_single_worker_serializes;
    Alcotest.test_case "sim: monotone in workers" `Quick test_sim_more_workers_never_slower;
    Alcotest.test_case "sim: dependencies respected" `Quick test_sim_respects_dependencies;
    Alcotest.test_case "sim: bandwidth penalty" `Quick test_sim_bandwidth_penalty;
    Alcotest.test_case "pool: runs each task once" `Quick test_pool_executes_all_once;
    Alcotest.test_case "pool: mutual exclusion holds" `Quick test_pool_checked_no_conflicts;
    Alcotest.test_case "pool: validation" `Quick test_pool_rejects_zero_workers;
  ]
