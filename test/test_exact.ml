module S = Ivc_grid.Stencil
module Cp = Ivc_exact.Cp
module Obb = Ivc_exact.Order_bb
module Opt = Ivc_exact.Optimize

let test_cp_trivial () =
  let single = S.make2 ~x:1 ~y:1 [| 5 |] in
  (match Cp.decide single ~k:5 with
  | Cp.Colorable s -> Alcotest.(check int) "start 0" 0 s.(0)
  | _ -> Alcotest.fail "single vertex fits exactly");
  (match Cp.decide single ~k:4 with
  | Cp.Not_colorable -> ()
  | _ -> Alcotest.fail "cannot fit 5 in 4");
  let zeros = S.init2 ~x:3 ~y:3 (fun _ _ -> 0) in
  match Cp.decide zeros ~k:0 with
  | Cp.Colorable _ -> ()
  | _ -> Alcotest.fail "all-zero instances need no colors"

let test_cp_k4_block () =
  let inst = S.make2 ~x:2 ~y:2 [| 3; 2; 1; 4 |] in
  (match Cp.decide inst ~k:10 with
  | Cp.Colorable s -> ignore (Ivc.Coloring.assert_valid inst s)
  | _ -> Alcotest.fail "sum of weights suffices on a K4");
  match Cp.decide inst ~k:9 with
  | Cp.Not_colorable -> ()
  | _ -> Alcotest.fail "a K4 needs the full sum"

let test_cp_optimize_matches_clique () =
  let inst = S.make2 ~x:2 ~y:2 [| 3; 2; 1; 4 |] in
  match Cp.optimize inst with
  | Some (opt, starts) ->
      Alcotest.(check int) "K4 optimum" 10 opt;
      ignore (Ivc.Coloring.assert_valid inst starts)
  | None -> Alcotest.fail "budget"

let test_lower_bounds_not_tight_fig3 () =
  (* Section III-D phenomenon (Figure 3 in the paper): an instance whose
     optimum strictly exceeds both the clique bound and the best
     odd-cycle bound. The paper's exact weights were not recoverable
     from the text, so this instance was found by exhaustive search
     with the same certified property (see EXPERIMENTS.md):
     clique = 18, odd-cycle = 18, optimum = 19. *)
  let w = [| 0; 4; 0; 0; 3; 7; 7; 9; 7; 1; 0; 1; 5; 3; 8; 5 |] in
  let inst = S.make2 ~x:4 ~y:4 w in
  Alcotest.(check int) "clique bound" 18 (Ivc.Bounds.clique_lb inst);
  Alcotest.(check int) "odd cycle bound" 18 (Ivc.Bounds.odd_cycle_lb ~max_len:11 inst);
  match Cp.optimize inst with
  | Some (opt, starts) ->
      Alcotest.(check int) "optimum exceeds both" 19 opt;
      ignore (Ivc.Coloring.assert_valid inst starts)
  | None -> Alcotest.fail "budget"

let test_order_bb_simple () =
  let inst = Util.random_inst2 ~seed:31 ~x:3 ~y:3 ~bound:7 in
  match (Obb.solve inst, Cp.optimize inst) with
  | Obb.Optimal (v1, s1), Some (v2, _) ->
      Alcotest.(check int) "engines agree" v2 v1;
      ignore (Ivc.Coloring.assert_valid inst s1)
  | Obb.Bounds _, _ -> Alcotest.fail "order bb should close a 3x3"
  | _, None -> Alcotest.fail "cp budget"

let test_order_bb_accessors () =
  let o = Obb.Optimal (5, [| 0 |]) in
  Alcotest.(check int) "lb" 5 (Obb.lower_bound_of o);
  Alcotest.(check int) "ub" 5 (Obb.upper_bound_of o);
  Alcotest.(check bool) "optimal" true (Obb.is_optimal o);
  let b = Obb.Bounds (3, 7, [| 0 |]) in
  Alcotest.(check int) "lb of bounds" 3 (Obb.lower_bound_of b);
  Alcotest.(check int) "ub of bounds" 7 (Obb.upper_bound_of b);
  Alcotest.(check bool) "not optimal" false (Obb.is_optimal b)

let test_optimize_frontend () =
  let inst = Util.random_inst2 ~seed:32 ~x:4 ~y:4 ~bound:9 in
  let o = Opt.solve inst in
  Alcotest.(check bool) "lb <= ub" true (o.Opt.lower_bound <= o.Opt.upper_bound);
  Alcotest.(check bool) "witness valid" true (Ivc.Coloring.is_valid inst o.Opt.starts);
  Alcotest.(check int) "witness consistent" o.Opt.upper_bound
    (Util.maxcolor inst o.Opt.starts);
  if o.Opt.proven_optimal then
    Alcotest.(check int) "closed gap" o.Opt.lower_bound o.Opt.upper_bound

let test_optimal_value () =
  let inst = S.make2 ~x:2 ~y:2 [| 1; 1; 1; 1 |] in
  Alcotest.(check (option int)) "unit K4" (Some 4) (Opt.optimal_value inst)

let test_milp_model () =
  let inst = S.make2 ~x:2 ~y:2 [| 3; 2; 1; 4 |] in
  let text = Ivc_exact.Milp.to_string inst in
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "minimizes maxcolor" true (contains "Minimize");
  Alcotest.(check bool) "objective" true (contains "obj: maxcolor");
  Alcotest.(check bool) "binaries" true (contains "Binary");
  Alcotest.(check bool) "ends" true (contains "End");
  let cont, bin, cons = Ivc_exact.Milp.model_size inst in
  Alcotest.(check int) "start vars + maxcolor" 5 cont;
  Alcotest.(check int) "one binary per edge (K4)" 6 bin;
  Alcotest.(check int) "constraints" 16 cons

let test_milp_skips_zero_weights () =
  let inst = S.make2 ~x:2 ~y:2 [| 3; 0; 0; 4 |] in
  let cont, bin, _ = Ivc_exact.Milp.model_size inst in
  Alcotest.(check int) "two start vars + maxcolor" 3 cont;
  Alcotest.(check int) "one conflicting pair" 1 bin

(* agreement between the two exact engines on random instances *)
let prop_engines_agree =
  Util.qtest ~count:25 "CP and order-BB agree" Util.gen_inst2 (fun inst ->
      match (Cp.optimize ~budget:2_000_000 inst, Obb.solve ~node_budget:400_000 inst) with
      | Some (v1, _), Obb.Optimal (v2, _) -> v1 = v2
      | _ -> QCheck2.assume_fail ())

(* exact is never above any heuristic *)
let prop_exact_below_heuristics =
  Util.qtest ~count:30 "exact <= best heuristic" Util.gen_inst2 (fun inst ->
      match Cp.optimize ~budget:2_000_000 inst with
      | None -> QCheck2.assume_fail ()
      | Some (opt, _) ->
          List.for_all (fun (_, _, mc) -> opt <= mc) (Ivc.Algo.run_all inst))

let suite =
  [
    Alcotest.test_case "cp trivial cases" `Quick test_cp_trivial;
    Alcotest.test_case "cp K4 block" `Quick test_cp_k4_block;
    Alcotest.test_case "cp optimize" `Quick test_cp_optimize_matches_clique;
    Alcotest.test_case "lower bounds not tight (Fig 3)" `Quick test_lower_bounds_not_tight_fig3;
    Alcotest.test_case "order-bb vs cp" `Quick test_order_bb_simple;
    Alcotest.test_case "order-bb accessors" `Quick test_order_bb_accessors;
    Alcotest.test_case "optimize front-end" `Quick test_optimize_frontend;
    Alcotest.test_case "optimal_value" `Quick test_optimal_value;
    Alcotest.test_case "milp model" `Quick test_milp_model;
    Alcotest.test_case "milp skips zero weights" `Quick test_milp_skips_zero_weights;
    prop_engines_agree;
    prop_exact_below_heuristics;
  ]
