(* Edge cases across modules that the mainline suites do not reach. *)

module S = Ivc_grid.Stencil

let test_milp_3d () =
  let inst = Util.random_inst3 ~seed:131 ~x:2 ~y:2 ~z:2 ~bound:5 in
  let text = Ivc_exact.Milp.to_string inst in
  Alcotest.(check bool) "emits a model" true (String.length text > 100);
  let cont, bin, cons = Ivc_exact.Milp.model_size inst in
  Alcotest.(check bool) "consistent sizes" true
    (cont >= 1 && bin >= 0 && cons >= cont - 1)

let test_gadget_with_unused_variable () =
  (* variable 4 appears in no clause: its tube still exists and the
     equivalence still holds *)
  let sat = Nae3sat.Instance.make 4 [ (1, 2, 3) ] in
  Nae3sat.Reduction.check_structure sat;
  let inst = Nae3sat.Reduction.build sat in
  match Ivc_exact.Cp.decide inst ~k:14 with
  | Ivc_exact.Cp.Colorable starts ->
      let a = Nae3sat.Reduction.assignment_of_coloring sat starts in
      Alcotest.(check bool) "assignment satisfies" true
        (Nae3sat.Instance.satisfies sat a)
  | _ -> Alcotest.fail "gadget with unused variable must stay colorable"

let test_reduction_rejects_empty () =
  let sat = Nae3sat.Instance.make 3 [] in
  match Nae3sat.Reduction.build sat with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero clauses must be rejected (depth would be 0)"

let test_pool_more_workers_than_tasks () =
  let inst = S.make2 ~x:2 ~y:2 [| 1; 1; 1; 1 |] in
  let starts = Ivc.Heuristics.gll inst in
  let dag = Taskpar.Dag.of_coloring inst ~starts ~cost:(fun _ -> 1.0) in
  let count = Atomic.make 0 in
  let _ = Taskpar.Pool.run dag ~workers:8 ~work:(fun _ -> Atomic.incr count) in
  Alcotest.(check int) "all four tasks ran" 4 (Atomic.get count)

let test_sim_idle_accounting () =
  let inst = S.make2 ~x:2 ~y:2 [| 2; 2; 2; 2 |] in
  let starts, _ = Ivc.Special.color_clique ~w:(inst : S.t).w in
  let dag = Taskpar.Dag.of_coloring inst ~starts ~cost:(fun _ -> 2.0) in
  let sch = Taskpar.Sim.run dag ~workers:2 in
  (* serialized chain of 4 tasks of cost 2 on 2 workers: makespan 8,
     busy 8, idle 8 *)
  Alcotest.(check (float 1e-9)) "makespan" 8.0 sch.Taskpar.Sim.makespan;
  Alcotest.(check (float 1e-9)) "idle" 8.0 sch.Taskpar.Sim.idle_time

let test_greedy_scratch_growth () =
  (* a 3D interior vertex has 26 neighbors: exercises buffer growth *)
  let inst = Util.random_inst3 ~seed:132 ~x:3 ~y:3 ~z:3 ~bound:9 in
  let st = Ivc.Greedy.create inst in
  (* color all neighbors of the center first *)
  S.iter_neighbors inst (S.id3 inst 1 1 1) (fun u ->
      ignore (Ivc.Greedy.color_vertex st u));
  let s = Ivc.Greedy.color_vertex st (S.id3 inst 1 1 1) in
  Alcotest.(check bool) "center colored" true (s >= 0);
  for v = 0 to S.n_vertices inst - 1 do
    ignore (Ivc.Greedy.color_vertex st v)
  done;
  Util.check_valid inst (Ivc.Greedy.starts st)

let test_auc_validation () =
  let p = { Perfprof.Profile.algorithm = "x"; points = [ (1.0, 1.0) ] } in
  Alcotest.check_raises "tau_max must exceed 1"
    (Invalid_argument "Profile.auc: tau_max must exceed 1") (fun () ->
      ignore (Perfprof.Profile.auc ~tau_max:1.0 p))

let test_bd_adversarial_shows_bd_weakness () =
  (* the generator built to stress BD: BD must stay within its 2x bound
     but visibly above the best heuristic *)
  let inst = Spatial_data.Generators.bd_adversarial ~amplitude:40 ~x:10 ~y:10 in
  let r = Ivc.Bipartite_decomp.bd2 inst in
  let bd_mc = Util.maxcolor inst r.Ivc.Bipartite_decomp.starts in
  Alcotest.(check bool) "within the certificate" true
    (bd_mc <= 2 * r.Ivc.Bipartite_decomp.part_colors);
  let best =
    List.fold_left (fun acc (_, _, mc) -> min acc mc) max_int (Ivc.Algo.run_all inst)
  in
  Alcotest.(check bool) "some algorithm at least matches BD" true (best <= bd_mc)

let test_interval_max_weight_equals_k () =
  (* decision at exactly the weight of the heaviest vertex *)
  let inst = S.make2 ~x:2 ~y:2 [| 7; 0; 0; 0 |] in
  (match Ivc_exact.Cp.decide inst ~k:7 with
  | Ivc_exact.Cp.Colorable s -> Alcotest.(check int) "at zero" 0 s.(0)
  | _ -> Alcotest.fail "must fit exactly");
  match Ivc_exact.Cp.decide inst ~k:6 with
  | Ivc_exact.Cp.Not_colorable -> ()
  | _ -> Alcotest.fail "cannot fit"

let test_order_bb_time_limit () =
  (* a generous instance with a tiny time limit must still return sane
     bounds *)
  let inst = Util.random_inst2 ~seed:133 ~x:8 ~y:8 ~bound:50 in
  match Ivc_exact.Order_bb.solve ~time_limit_s:0.01 ~node_budget:100_000_000 inst with
  | Ivc_exact.Order_bb.Optimal (v, s) ->
      Alcotest.(check int) "witness consistent" v (Util.maxcolor inst s)
  | Ivc_exact.Order_bb.Bounds (lb, ub, s) ->
      Alcotest.(check bool) "lb <= ub" true (lb <= ub);
      Util.check_valid inst s

let test_stencil_1xn_instances () =
  (* the problem statement assumes dims > 1 but the API supports chains;
     all algorithms must still work *)
  let inst = S.make2 ~x:1 ~y:6 [| 3; 1; 4; 1; 5; 9 |] in
  List.iter
    (fun (name, starts, mc) ->
      Alcotest.(check bool) (name ^ " valid on a chain") true
        (Ivc.Coloring.is_valid inst starts);
      (* a chain is bipartite: optimal = max adjacent pair = 14 *)
      Alcotest.(check bool) (name ^ " at least 14") true (mc >= 14))
    (Ivc.Algo.run_all inst);
  let _, opt = Ivc.Special.color_chain (inst : S.t).w in
  Alcotest.(check int) "chain optimum" 14 opt

let suite =
  [
    Alcotest.test_case "milp on 3D" `Quick test_milp_3d;
    Alcotest.test_case "gadget with unused variable" `Quick test_gadget_with_unused_variable;
    Alcotest.test_case "reduction rejects empty" `Quick test_reduction_rejects_empty;
    Alcotest.test_case "pool with spare workers" `Quick test_pool_more_workers_than_tasks;
    Alcotest.test_case "sim idle accounting" `Quick test_sim_idle_accounting;
    Alcotest.test_case "greedy scratch growth" `Quick test_greedy_scratch_growth;
    Alcotest.test_case "auc validation" `Quick test_auc_validation;
    Alcotest.test_case "bd adversarial generator" `Quick test_bd_adversarial_shows_bd_weakness;
    Alcotest.test_case "decision at exact weight" `Quick test_interval_max_weight_equals_k;
    Alcotest.test_case "order-bb time limit" `Quick test_order_bb_time_limit;
    Alcotest.test_case "1xN chain instances" `Quick test_stencil_1xn_instances;
  ]
