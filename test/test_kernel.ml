(* Differential tests of the allocation-free kernel against the
   retained pre-kernel engine (Greedy.Reference), now phrased through
   the shared Ivc_check oracle registry: the same oracles the fuzzer
   runs (kernel-diff, tiled-diff, par-diff) are applied here to
   qcheck-generated and handcrafted instances, so a failure found by
   either harness reproduces in the other. *)

module S = Ivc_grid.Stencil
module Ff = Ivc_kernel.Ff
module Tiles = Ivc_kernel.Tiles
module Par = Ivc_kernel.Par_sweep
module O = Ivc_check.Oracles

let prop_kernel_matches inst = Util.oracle_holds O.kernel_diff inst
let prop_tiled_matches inst = Util.oracle_holds O.tiled_diff inst
let prop_par_matches inst = Util.oracle_holds O.par_diff inst

(* Large weights push every neighborhood past the bitset window, so
   this exercises the sorted-scan path specifically. *)
let test_scan_path_matches () =
  ignore (Util.oracle_holds O.kernel_diff
            (Util.random_inst2 ~seed:5 ~x:8 ~y:9 ~bound:120));
  ignore (Util.oracle_holds O.kernel_diff
            (Util.random_inst3 ~seed:6 ~x:4 ~y:4 ~z:4 ~bound:90))

(* Small weights keep maxf inside the window on 3D (degree 26), the
   bitset fast path's home turf. *)
let test_bitset_path_matches () =
  ignore (Util.oracle_holds O.kernel_diff
            (Util.random_inst3 ~seed:7 ~x:5 ~y:5 ~z:5 ~bound:4))

let test_engine_ops () =
  let inst = Util.random_inst2 ~seed:8 ~x:5 ~y:5 ~bound:10 in
  let t = Ff.create inst in
  Alcotest.(check int) "all uncolored" 25 (Ff.remaining t);
  let s0 = Ff.color_vertex t 12 in
  Alcotest.(check int) "first vertex at 0" 0 s0;
  Alcotest.(check int) "recolor is idempotent" s0 (Ff.color_vertex t 12);
  Alcotest.(check bool) "is_colored" true (Ff.is_colored t 12);
  for v = 0 to 24 do
    ignore (Ff.color_vertex t v)
  done;
  Alcotest.(check int) "none remaining" 0 (Ff.remaining t);
  Alcotest.(check int) "maxcolor agrees" (Util.maxcolor inst (Ff.starts t))
    (Ff.maxcolor t);
  let before = Ff.start t 12 in
  Ff.uncolor t 12;
  Alcotest.(check bool) "uncolored" false (Ff.is_colored t 12);
  Alcotest.(check int) "recolor reuses the gap" before (Ff.recolor t 12);
  Util.check_valid inst (Ff.starts t)

let test_first_fit_for_refits () =
  let inst = Util.random_inst2 ~seed:9 ~x:6 ~y:6 ~bound:12 in
  let starts = Ff.color_in_order inst (S.row_major_order inst) in
  let sc = Ff.make_scratch inst in
  (* re-fitting any colored vertex against the full coloring can always
     reuse its own start (first fit returns the lowest feasible one,
     and the current start is feasible) *)
  for v = 0 to S.n_vertices inst - 1 do
    let cur = starts.(v) in
    starts.(v) <- -1;
    let refit = Ff.first_fit_for sc ~starts v in
    Alcotest.(check bool)
      (Printf.sprintf "refit of %d not above old start" v)
      true
      (refit <= cur || (inst : S.t).w.(v) = 0);
    starts.(v) <- cur
  done

let test_order_validation () =
  let inst = Util.random_inst2 ~seed:10 ~x:3 ~y:3 ~bound:5 in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Ivc_kernel.Ff.color_in_order: order length mismatch")
    (fun () -> ignore (Ff.color_in_order inst [| 0; 1 |]));
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Ivc_kernel.Ff.color_in_order: order is not a permutation")
    (fun () -> ignore (Ff.color_in_order inst (Array.make 9 0)))

let test_tile_order_permutation () =
  List.iter
    (fun inst ->
      List.iter
        (fun order ->
          let n = S.n_vertices inst in
          let seen = Array.make n false in
          Array.iter (fun v -> seen.(v) <- true) order;
          Alcotest.(check int) "order length" n (Array.length order);
          Alcotest.(check bool) "order is a permutation" true
            (Array.for_all Fun.id seen))
        [
          Tiles.tile_order ~tile:2 inst;
          Tiles.tile_order inst;
          Par.equivalent_order ~tile:2 inst;
          Par.equivalent_order inst;
        ])
    [
      Util.random_inst2 ~seed:11 ~x:7 ~y:5 ~bound:6;
      Util.random_inst3 ~seed:12 ~x:3 ~y:5 ~z:4 ~bound:6;
      (* 1 x N ribbon: exercises the radix fallback of iter_cells *)
      Util.random_inst2 ~seed:13 ~x:1 ~y:40 ~bound:6;
    ]

(* The fuzzer's adversarial families (chains, cliques, rings, stripes,
   heavy-tail, zero-heavy) hit corners the uniform qcheck distribution
   rarely reaches; run every kernel oracle over each family. *)
let test_families_differential () =
  List.iter
    (fun f ->
      let inst = Ivc_check.Gen.of_family f ~seed:97 in
      List.iter
        (fun o -> ignore (Util.oracle_holds o inst))
        [ O.kernel_diff; O.tiled_diff; O.par_diff ])
    Ivc_check.Gen.families

let suite =
  [
    Alcotest.test_case "scan path differential" `Quick test_scan_path_matches;
    Alcotest.test_case "bitset path differential" `Quick
      test_bitset_path_matches;
    Alcotest.test_case "engine operations" `Quick test_engine_ops;
    Alcotest.test_case "first_fit_for refits" `Quick test_first_fit_for_refits;
    Alcotest.test_case "order validation" `Quick test_order_validation;
    Alcotest.test_case "tiled orders are permutations" `Quick
      test_tile_order_permutation;
    Alcotest.test_case "generator families differential" `Quick
      test_families_differential;
    Util.qtest ~count:60 "kernel-diff oracle (2D)" Util.gen_inst2
      prop_kernel_matches;
    Util.qtest ~count:60 "kernel-diff oracle (3D)" Util.gen_inst3
      prop_kernel_matches;
    Util.qtest ~count:60 "tiled-diff oracle (2D)" Util.gen_inst2
      prop_tiled_matches;
    Util.qtest ~count:40 "tiled-diff oracle (3D)" Util.gen_inst3
      prop_tiled_matches;
    Util.qtest ~count:40 "par-diff oracle (2D)" Util.gen_inst2
      prop_par_matches;
    Util.qtest ~count:25 "par-diff oracle (3D)" Util.gen_inst3
      prop_par_matches;
  ]
