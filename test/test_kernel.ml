(* Differential tests of the allocation-free kernel against the
   retained pre-kernel engine (Greedy.Reference): identical starts on
   the same order — first fit is deterministic, so equality is exact,
   not just equal maxcolor — plus the independent certificate gate on
   every kernel output. *)

module S = Ivc_grid.Stencil
module Ff = Ivc_kernel.Ff
module Tiles = Ivc_kernel.Tiles
module Par = Ivc_kernel.Par_sweep
module Ref = Ivc.Greedy.Reference
module Cert = Ivc_resilient.Cert

let check_cert inst starts =
  match Cert.check inst starts with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "certificate rejected: %s" (Cert.to_string e)

let shuffled seed n =
  let rng = Spatial_data.Rng.create (seed + 13) in
  let order = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Spatial_data.Rng.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  order

(* kernel sweep == reference sweep, exactly, on one order *)
let same_as_reference inst order =
  let k = Ff.color_in_order inst order in
  check_cert inst k;
  let r = Ref.color_in_order inst order in
  Alcotest.(check (array int)) "kernel = reference" r k

let orders_of inst seed =
  [
    ("row-major", S.row_major_order inst);
    ("z-order", S.zorder inst);
    ("shuffled", shuffled seed (S.n_vertices inst));
  ]

let gen_with_seed gen = QCheck2.Gen.(pair gen (int_range 0 10_000))

let prop_kernel_matches (inst, seed) =
  List.iter (fun (_, order) -> same_as_reference inst order) (orders_of inst seed);
  true

let prop_tiled_matches (inst, _) =
  List.iter
    (fun tile ->
      let order = Tiles.tile_order ~tile inst in
      let tiled = Tiles.color ~tile inst in
      check_cert inst tiled;
      Alcotest.(check (array int)) "tiled = reference on tile_order"
        (Ref.color_in_order inst order)
        tiled)
    [ 2; 3 ];
  true

let prop_par_matches (inst, _) =
  List.iter
    (fun workers ->
      let order = Par.equivalent_order ~tile:2 inst in
      let par, stats = Par.color ~workers ~tile:2 inst in
      check_cert inst par;
      Alcotest.(check int) "interior + seam = n" (S.n_vertices inst)
        (stats.Par.interior + stats.Par.seam);
      Alcotest.(check (array int)) "parallel = reference on equivalent_order"
        (Ref.color_in_order inst order)
        par)
    [ 1; 3 ];
  true

let print_pair (inst, seed) =
  Format.asprintf "seed %d, %a" seed S.pp inst

let qtest ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:print_pair gen f)

(* Large weights push every neighborhood past the bitset window, so
   this exercises the sorted-scan path specifically. *)
let test_scan_path_matches () =
  let inst = Util.random_inst2 ~seed:5 ~x:8 ~y:9 ~bound:120 in
  List.iter (fun (_, order) -> same_as_reference inst order) (orders_of inst 5);
  let inst3 = Util.random_inst3 ~seed:6 ~x:4 ~y:4 ~z:4 ~bound:90 in
  List.iter (fun (_, order) -> same_as_reference inst3 order) (orders_of inst3 6)

(* Small weights keep maxf inside the window on 3D (degree 26), the
   bitset fast path's home turf. *)
let test_bitset_path_matches () =
  let inst = Util.random_inst3 ~seed:7 ~x:5 ~y:5 ~z:5 ~bound:4 in
  List.iter (fun (_, order) -> same_as_reference inst order) (orders_of inst 7)

let test_engine_ops () =
  let inst = Util.random_inst2 ~seed:8 ~x:5 ~y:5 ~bound:10 in
  let t = Ff.create inst in
  Alcotest.(check int) "all uncolored" 25 (Ff.remaining t);
  let s0 = Ff.color_vertex t 12 in
  Alcotest.(check int) "first vertex at 0" 0 s0;
  Alcotest.(check int) "recolor is idempotent" s0 (Ff.color_vertex t 12);
  Alcotest.(check bool) "is_colored" true (Ff.is_colored t 12);
  for v = 0 to 24 do
    ignore (Ff.color_vertex t v)
  done;
  Alcotest.(check int) "none remaining" 0 (Ff.remaining t);
  Alcotest.(check int) "maxcolor agrees" (Util.maxcolor inst (Ff.starts t))
    (Ff.maxcolor t);
  let before = Ff.start t 12 in
  Ff.uncolor t 12;
  Alcotest.(check bool) "uncolored" false (Ff.is_colored t 12);
  Alcotest.(check int) "recolor reuses the gap" before (Ff.recolor t 12);
  Util.check_valid inst (Ff.starts t)

let test_first_fit_for_refits () =
  let inst = Util.random_inst2 ~seed:9 ~x:6 ~y:6 ~bound:12 in
  let starts = Ff.color_in_order inst (S.row_major_order inst) in
  let sc = Ff.make_scratch inst in
  (* re-fitting any colored vertex against the full coloring can always
     reuse its own start (first fit returns the lowest feasible one,
     and the current start is feasible) *)
  for v = 0 to S.n_vertices inst - 1 do
    let cur = starts.(v) in
    starts.(v) <- -1;
    let refit = Ff.first_fit_for sc ~starts v in
    Alcotest.(check bool)
      (Printf.sprintf "refit of %d not above old start" v)
      true
      (refit <= cur || (inst : S.t).w.(v) = 0);
    starts.(v) <- cur
  done

let test_order_validation () =
  let inst = Util.random_inst2 ~seed:10 ~x:3 ~y:3 ~bound:5 in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Ivc_kernel.Ff.color_in_order: order length mismatch")
    (fun () -> ignore (Ff.color_in_order inst [| 0; 1 |]));
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Ivc_kernel.Ff.color_in_order: order is not a permutation")
    (fun () -> ignore (Ff.color_in_order inst (Array.make 9 0)))

let test_tile_order_permutation () =
  List.iter
    (fun inst ->
      List.iter
        (fun order ->
          let n = S.n_vertices inst in
          let seen = Array.make n false in
          Array.iter (fun v -> seen.(v) <- true) order;
          Alcotest.(check int) "order length" n (Array.length order);
          Alcotest.(check bool) "order is a permutation" true
            (Array.for_all Fun.id seen))
        [
          Tiles.tile_order ~tile:2 inst;
          Tiles.tile_order inst;
          Par.equivalent_order ~tile:2 inst;
          Par.equivalent_order inst;
        ])
    [
      Util.random_inst2 ~seed:11 ~x:7 ~y:5 ~bound:6;
      Util.random_inst3 ~seed:12 ~x:3 ~y:5 ~z:4 ~bound:6;
      (* 1 x N ribbon: exercises the radix fallback of iter_cells *)
      Util.random_inst2 ~seed:13 ~x:1 ~y:40 ~bound:6;
    ]

let suite =
  [
    Alcotest.test_case "scan path differential" `Quick test_scan_path_matches;
    Alcotest.test_case "bitset path differential" `Quick
      test_bitset_path_matches;
    Alcotest.test_case "engine operations" `Quick test_engine_ops;
    Alcotest.test_case "first_fit_for refits" `Quick test_first_fit_for_refits;
    Alcotest.test_case "order validation" `Quick test_order_validation;
    Alcotest.test_case "tiled orders are permutations" `Quick
      test_tile_order_permutation;
    qtest "kernel = reference on 2D orders" (gen_with_seed Util.gen_inst2)
      prop_kernel_matches;
    qtest "kernel = reference on 3D orders" (gen_with_seed Util.gen_inst3)
      prop_kernel_matches;
    qtest "tiled sweep = reference (2D)" (gen_with_seed Util.gen_inst2)
      prop_tiled_matches;
    qtest "tiled sweep = reference (3D)" ~count:40
      (gen_with_seed Util.gen_inst3) prop_tiled_matches;
    qtest "parallel sweep = reference (2D)" ~count:40
      (gen_with_seed Util.gen_inst2) prop_par_matches;
    qtest "parallel sweep = reference (3D)" ~count:25
      (gen_with_seed Util.gen_inst3) prop_par_matches;
  ]
