(* The serving layer: wire-protocol codecs, frame transport, and the
   daemon end to end — admission control, the fingerprint cache,
   per-request deadlines, and connection survival under damaged
   frames.

   The end-to-end tests each boot a private server on a Unix socket
   in the system temp directory and tear it down in all paths; the
   slow requests they use to occupy workers are 16x16 instances with
   the improvement stage enabled, which reliably burns its whole
   deadline (the exact stage cannot close that instance quickly). *)

module S = Ivc_grid.Stencil
module Proto = Ivc_server.Proto
module Server = Ivc_server.Server
module Client = Ivc_server.Client
module Codec = Ivc_persist.Codec
module Cert = Ivc_resilient.Cert

let same_inst a b =
  (a : S.t).dims = (b : S.t).dims && (a : S.t).w = (b : S.t).w

let fast_opts =
  {
    Proto.deadline_s = Some 5.0;
    priority = 10;
    budget = Some 200;
    improve = false;
    use_cache = true;
  }

(* Burns its whole deadline: on [hard_inst] (6400 vertices) the
   improvement stage alone outlasts any deadline the tests use, so a
   worker running these options is reliably busy until the token
   expires. *)
let slow_opts seconds =
  {
    Proto.deadline_s = Some seconds;
    priority = 10;
    budget = None;
    improve = true;
    use_cache = false;
  }

let small_inst = Util.random_inst2 ~seed:7 ~x:8 ~y:8 ~bound:4
let hard_inst = Util.random_inst2 ~seed:42 ~x:80 ~y:80 ~bound:200

(* ---- body codecs ------------------------------------------------------ *)

let roundtrip_request req =
  match Proto.decode_request (Proto.encode_request req) with
  | Error (_, m) -> Alcotest.failf "request did not round-trip: %s" m
  | Ok got -> (
      match (req, got) with
      | ( Proto.Solve { inst = ia; opts = oa },
          Proto.Solve { inst = ib; opts = ob } ) ->
          Alcotest.(check bool) "instance round-trips" true (same_inst ia ib);
          Alcotest.(check bool) "options round-trip" true (oa = ob)
      | a, b -> Alcotest.(check bool) "request round-trips" true (a = b))

let test_request_roundtrips () =
  roundtrip_request Proto.Ping;
  roundtrip_request Proto.Stats;
  roundtrip_request Proto.Shutdown;
  roundtrip_request
    (Proto.Solve { inst = small_inst; opts = Proto.default_solve_options });
  roundtrip_request
    (Proto.Solve
       {
         inst = Util.random_inst3 ~seed:3 ~x:3 ~y:4 ~z:2 ~bound:6;
         opts =
           {
             Proto.deadline_s = Some 0.25;
             priority = -3;
             budget = Some 1234;
             improve = false;
             use_cache = false;
           };
       })

let roundtrip_response resp =
  match Proto.decode_response (Proto.encode_response resp) with
  | Error m -> Alcotest.failf "response did not round-trip: %s" m
  | Ok got -> Alcotest.(check bool) "response round-trips" true (resp = got)

let test_response_roundtrips () =
  roundtrip_response (Proto.Pong { version = Proto.version });
  roundtrip_response
    (Proto.Solution
       {
         Proto.starts = [| 0; 3; 7; 12 |];
         maxcolor = 14;
         lower_bound = 12;
         provenance = "heuristic:BDP";
         proven_optimal = false;
         elapsed_s = 0.125;
         cache_hit = true;
         resumed = true;
         fingerprint = 0xdeadbeefL;
       });
  List.iter
    (fun code ->
      roundtrip_response
        (Proto.Shed { code; depth = 5; message = "busy" }))
    [ Proto.Queue_full; Proto.Too_large; Proto.Expired_in_queue ];
  List.iter
    (fun code ->
      roundtrip_response (Proto.Error { code; message = "boom" }))
    [
      Proto.Bad_frame; Proto.Bad_version; Proto.Bad_request;
      Proto.Cert_failed; Proto.Internal;
    ];
  roundtrip_response (Proto.Stats_reply { json = {|{"server":{}}|} });
  roundtrip_response Proto.Shutting_down

let qtest_solve_roundtrip =
  Util.qtest ~count:60 "solve request round-trips" Util.gen_inst2
    (fun inst ->
      match
        Proto.decode_request
          (Proto.encode_request
             (Proto.Solve { inst; opts = Proto.default_solve_options }))
      with
      | Ok (Proto.Solve { inst = got; _ }) -> same_inst inst got
      | _ -> false)

(* decode fails closed: version skew is typed, every other malformation
   is [Bad_request], and none of them raise *)
let expect_reject name body expected =
  match Proto.decode_request body with
  | Ok _ -> Alcotest.failf "%s: decoded a malformed body" name
  | Error (code, _) ->
      Alcotest.(check string)
        name
        (Proto.error_code_to_string expected)
        (Proto.error_code_to_string code)

let test_decode_rejects () =
  let wrong_version =
    let b = Codec.W.create () in
    Codec.W.int b (Proto.version + 1);
    Codec.W.int b 0;
    Codec.W.contents b
  in
  expect_reject "future version" wrong_version Proto.Bad_version;
  let unknown_tag =
    let b = Codec.W.create () in
    Codec.W.int b Proto.version;
    Codec.W.int b 99;
    Codec.W.contents b
  in
  expect_reject "unknown tag" unknown_tag Proto.Bad_request;
  let solve =
    Proto.encode_request
      (Proto.Solve { inst = small_inst; opts = Proto.default_solve_options })
  in
  expect_reject "truncated body"
    (String.sub solve 0 (String.length solve / 2))
    Proto.Bad_request;
  expect_reject "trailing bytes" (solve ^ "x") Proto.Bad_request;
  expect_reject "empty body" "" Proto.Bad_request;
  let short_weights =
    (* claims a 3x3 grid but carries five weights: the instance
       validator must reject it, surfaced as a typed decode error *)
    let b = Codec.W.create () in
    Codec.W.int b Proto.version;
    Codec.W.int b 1;
    Codec.W.int b 2;
    Codec.W.int b 3;
    Codec.W.int b 3;
    Codec.W.int_array b [| 1; 2; 3; 4; 5 |];
    Codec.W.contents b
  in
  expect_reject "weight/dims mismatch" short_weights Proto.Bad_request;
  (match Proto.decode_response "" with
  | Ok _ -> Alcotest.fail "decoded an empty response body"
  | Error _ -> ())

(* ---- frame transport -------------------------------------------------- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let write_raw fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "raw write complete" (String.length s) n

let test_frame_roundtrip () =
  with_pipe @@ fun r w ->
  Proto.write_frame w "hello";
  Proto.write_frame w "";
  Proto.write_frame w (String.make 1000 'z');
  Alcotest.(check (result string reject)) "first frame" (Ok "hello")
    (Proto.read_frame r);
  Alcotest.(check (result string reject)) "empty frame" (Ok "")
    (Proto.read_frame r);
  Alcotest.(check (result string reject)) "big frame"
    (Ok (String.make 1000 'z'))
    (Proto.read_frame r);
  Unix.close w;
  (match Proto.read_frame r with
  | Error Proto.Eof -> ()
  | _ -> Alcotest.fail "clean close must read as Eof")

let test_frame_damage () =
  with_pipe (fun r w ->
      write_raw w "IV";
      Unix.close w;
      match Proto.read_frame r with
      | Error Proto.Truncated -> ()
      | _ -> Alcotest.fail "partial header must be Truncated");
  with_pipe (fun r w ->
      write_raw w "XXXX\x05\x00\x00\x00hello";
      match Proto.read_frame r with
      | Error Proto.Bad_magic -> ()
      | _ -> Alcotest.fail "wrong magic must be Bad_magic");
  with_pipe (fun r w ->
      write_raw w "IVCR\x0a\x00\x00\x00hi";
      Unix.close w;
      match Proto.read_frame r with
      | Error Proto.Truncated -> ()
      | _ -> Alcotest.fail "short body must be Truncated")

let test_frame_oversized_stays_in_sync () =
  with_pipe @@ fun r w ->
  Proto.write_frame w (String.make 100 'a');
  Proto.write_frame w "after";
  (match Proto.read_frame ~max_frame:16 r with
  | Error (Proto.Oversized 100) -> ()
  | _ -> Alcotest.fail "over-cap body must be Oversized");
  (* the oversized body was consumed, so the stream is still in sync *)
  Alcotest.(check (result string reject)) "next frame still parses"
    (Ok "after")
    (Proto.read_frame ~max_frame:16 r)

(* ---- the daemon end to end -------------------------------------------- *)

let with_server ?(workers = 1) ?(queue_capacity = 8) ?(cache_capacity = 8)
    ?max_vertices ?max_frame f =
  let path = Filename.temp_file "ivc_test" ".sock" in
  let addr = Server.Unix_sock path in
  let base = Server.default_config addr in
  let cfg =
    {
      base with
      Server.workers;
      queue_capacity;
      cache_capacity;
      max_vertices = Option.value max_vertices ~default:base.Server.max_vertices;
      max_frame = Option.value max_frame ~default:base.Server.max_frame;
    }
  in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f addr)

let solve_ok addr ~opts inst =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.solve c ~opts inst with
  | Ok (Proto.Solution s) -> s
  | Ok _ -> Alcotest.fail "expected a solution"
  | Error m -> Alcotest.failf "solve failed: %s" m

let test_e2e_solve_and_cache () =
  with_server @@ fun addr ->
  let s1 = solve_ok addr ~opts:fast_opts small_inst in
  let mc = Cert.assert_ok small_inst s1.Proto.starts in
  Alcotest.(check int) "reported maxcolor certified" s1.Proto.maxcolor mc;
  Alcotest.(check bool) "first solve misses the cache" false
    s1.Proto.cache_hit;
  Alcotest.(check bool) "lower bound below maxcolor" true
    (s1.Proto.lower_bound <= s1.Proto.maxcolor);
  let s2 = solve_ok addr ~opts:fast_opts small_inst in
  Alcotest.(check bool) "repeat hits the cache" true s2.Proto.cache_hit;
  Alcotest.(check int) "cached maxcolor matches" s1.Proto.maxcolor
    s2.Proto.maxcolor;
  Alcotest.(check bool) "fingerprints agree" true
    (Int64.equal s1.Proto.fingerprint s2.Proto.fingerprint);
  ignore (Cert.assert_ok small_inst s2.Proto.starts);
  let s3 =
    solve_ok addr ~opts:{ fast_opts with Proto.use_cache = false } small_inst
  in
  Alcotest.(check bool) "no-cache bypasses the cache" false s3.Proto.cache_hit

let test_e2e_ping_and_stats () =
  with_server @@ fun addr ->
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.ping c with
  | Ok v -> Alcotest.(check int) "protocol version" Proto.version v
  | Error m -> Alcotest.failf "ping failed: %s" m);
  ignore (solve_ok addr ~opts:fast_opts small_inst);
  match Client.stats c with
  | Error m -> Alcotest.failf "stats failed: %s" m
  | Ok json ->
      let has needle =
        let n = String.length needle and m = String.length json in
        let rec at i =
          i + n <= m && (String.sub json i n = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool) "stats has a server block" true (has "\"server\"");
      Alcotest.(check bool) "stats carries request counters" true
        (has "server.requests")

let test_e2e_too_large () =
  with_server ~max_vertices:50 @@ fun addr ->
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.solve c ~opts:fast_opts small_inst with
  | Ok (Proto.Shed { code = Proto.Too_large; _ }) -> ()
  | Ok _ -> Alcotest.fail "64 vertices over a 50-vertex cap must shed"
  | Error m -> Alcotest.failf "request failed: %s" m

(* A damaged frame must never take down the connection unless the
   stream is desynchronized: undecodable and oversized bodies get a
   typed error and the next request still works; bad magic is fatal. *)
let test_e2e_damage_survival () =
  with_server ~max_frame:1024 @@ fun addr ->
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      (* right version, junk after it: decode fails closed, typed *)
      let garbage =
        let b = Codec.W.create () in
        Codec.W.int b Proto.version;
        Codec.W.contents b ^ "junk"
      in
      Proto.write_frame fd garbage;
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Error { code = Proto.Bad_request; _ }) -> ()
          | _ -> Alcotest.fail "garbage body must answer Bad_request")
      | Error e ->
          Alcotest.failf "no reply to a garbage body: %s"
            (Proto.frame_error_to_string e));
      Proto.write_frame fd (String.make 2000 'j');
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Error { code = Proto.Bad_frame; _ }) -> ()
          | _ -> Alcotest.fail "oversized frame must answer Bad_frame")
      | Error e ->
          Alcotest.failf "no reply to an oversized frame: %s"
            (Proto.frame_error_to_string e));
      (* the connection survived both — a normal request still works *)
      Proto.write_frame fd (Proto.encode_request Proto.Ping);
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Pong _) -> ()
          | _ -> Alcotest.fail "ping after damage must pong")
      | Error e ->
          Alcotest.failf "connection did not survive: %s"
            (Proto.frame_error_to_string e));
      (* bad magic desynchronizes: typed error, then the server hangs up *)
      write_raw fd "QQQQ\x00\x00\x00\x00";
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Error { code = Proto.Bad_frame; _ }) -> ()
          | _ -> Alcotest.fail "bad magic must answer Bad_frame")
      | Error e ->
          Alcotest.failf "no reply to bad magic: %s"
            (Proto.frame_error_to_string e));
      match Proto.read_frame fd with
      | Error (Proto.Eof | Proto.Truncated) -> ()
      | _ -> Alcotest.fail "bad magic must close the connection")

(* Occupy the single worker with a deadline-burning solve, then watch
   the admission controller shed: queue capacity 0 means anything
   beyond the in-flight request answers Queue_full. *)
let spawn_slow addr seconds =
  let out = ref None in
  let th =
    Thread.create
      (fun () ->
        match solve_ok addr ~opts:(slow_opts seconds) hard_inst with
        | s -> out := Some (Ok s)
        | exception e -> out := Some (Error (Printexc.to_string e)))
      ()
  in
  fun () ->
    Thread.join th;
    match !out with
    | Some (Ok s) -> s
    | Some (Error m) -> Alcotest.failf "slow solve failed: %s" m
    | None -> Alcotest.fail "slow solve produced nothing"

let test_e2e_queue_full_shed () =
  with_server ~workers:1 ~queue_capacity:0 ~cache_capacity:0 @@ fun addr ->
  let join_slow = spawn_slow addr 1.5 in
  Thread.delay 0.4;
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.solve c ~opts:fast_opts small_inst with
  | Ok (Proto.Shed { code = Proto.Queue_full; _ }) -> ()
  | Ok _ -> Alcotest.fail "saturated server must shed Queue_full"
  | Error m -> Alcotest.failf "request failed: %s" m);
  ignore (join_slow ())

(* The deadline token is minted at admission, so time spent queued
   behind the busy worker counts: a request whose deadline passes in
   the queue is shed typed, never solved late. *)
let test_e2e_expired_in_queue () =
  with_server ~workers:1 ~cache_capacity:0 @@ fun addr ->
  let join_slow = spawn_slow addr 1.2 in
  Thread.delay 0.3;
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match
     Client.solve c
       ~opts:{ fast_opts with Proto.deadline_s = Some 0.2 }
       small_inst
   with
  | Ok (Proto.Shed { code = Proto.Expired_in_queue; _ }) -> ()
  | Ok _ -> Alcotest.fail "a deadline spent queueing must shed Expired"
  | Error m -> Alcotest.failf "request failed: %s" m);
  ignore (join_slow ())

(* Two workers: a deadline-burning request on one must not delay a
   fast request on the other — per-request deadlines are isolated. *)
let test_e2e_deadline_isolation () =
  with_server ~workers:2 ~cache_capacity:0 @@ fun addr ->
  let join_slow = spawn_slow addr 1.5 in
  Thread.delay 0.2;
  let t0 = Ivc_obs.now_ns () in
  let fast = solve_ok addr ~opts:fast_opts small_inst in
  let waited = Ivc_obs.elapsed_s ~since:t0 in
  ignore (Cert.assert_ok small_inst fast.Proto.starts);
  Alcotest.(check bool)
    (Printf.sprintf "fast request not stalled behind slow one (%.2fs)" waited)
    true (waited < 1.0);
  let s = join_slow () in
  ignore (Cert.assert_ok hard_inst s.Proto.starts)

let test_e2e_shutdown_request () =
  let path = Filename.temp_file "ivc_test" ".sock" in
  let srv = Server.start (Server.default_config (Server.Unix_sock path)) in
  let c = Client.connect (Server.Unix_sock path) in
  (match Client.shutdown c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "shutdown failed: %s" m);
  Client.close c;
  (* wait must see the client-requested shutdown; stop is idempotent *)
  Server.wait srv;
  Server.stop srv;
  Server.stop srv;
  try Sys.remove path with Sys_error _ -> ()

let suite =
  [
    Alcotest.test_case "request bodies round-trip" `Quick
      test_request_roundtrips;
    Alcotest.test_case "response bodies round-trip" `Quick
      test_response_roundtrips;
    qtest_solve_roundtrip;
    Alcotest.test_case "malformed bodies rejected typed" `Quick
      test_decode_rejects;
    Alcotest.test_case "frames round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame damage detected" `Quick test_frame_damage;
    Alcotest.test_case "oversized frame keeps stream in sync" `Quick
      test_frame_oversized_stays_in_sync;
    Alcotest.test_case "e2e: solve, certify, cache" `Quick
      test_e2e_solve_and_cache;
    Alcotest.test_case "e2e: ping and stats" `Quick test_e2e_ping_and_stats;
    Alcotest.test_case "e2e: oversize admission shed" `Quick
      test_e2e_too_large;
    Alcotest.test_case "e2e: connection survives damaged frames" `Quick
      test_e2e_damage_survival;
    Alcotest.test_case "e2e: saturation sheds Queue_full" `Slow
      test_e2e_queue_full_shed;
    Alcotest.test_case "e2e: deadline expires in queue" `Slow
      test_e2e_expired_in_queue;
    Alcotest.test_case "e2e: deadlines are isolated" `Slow
      test_e2e_deadline_isolation;
    Alcotest.test_case "e2e: client-requested shutdown" `Quick
      test_e2e_shutdown_request;
  ]
