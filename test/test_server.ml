(* The serving layer: wire-protocol codecs, frame transport, and the
   daemon end to end — admission control, the fingerprint cache,
   per-request deadlines, and connection survival under damaged
   frames.

   The end-to-end tests each boot a private server on a Unix socket
   in the system temp directory and tear it down in all paths; the
   slow requests they use to occupy workers are 16x16 instances with
   the improvement stage enabled, which reliably burns its whole
   deadline (the exact stage cannot close that instance quickly). *)

module S = Ivc_grid.Stencil
module Proto = Ivc_server.Proto
module Server = Ivc_server.Server
module Client = Ivc_server.Client
module Net = Ivc_server.Netfaults
module Supervise = Ivc_server.Supervise
module Replica = Ivc_server.Replica
module Codec = Ivc_persist.Codec
module Cert = Ivc_resilient.Cert
module D = Ivc_incremental.Delta
module Snapshot = Ivc_persist.Snapshot

let same_inst a b =
  (a : S.t).dims = (b : S.t).dims && (a : S.t).w = (b : S.t).w

let fast_opts =
  {
    Proto.deadline_s = Some 5.0;
    priority = 10;
    budget = Some 200;
    improve = false;
    use_cache = true;
  }

(* Burns its whole deadline: on [hard_inst] (6400 vertices) the
   improvement stage alone outlasts any deadline the tests use, so a
   worker running these options is reliably busy until the token
   expires. *)
let slow_opts seconds =
  {
    Proto.deadline_s = Some seconds;
    priority = 10;
    budget = None;
    improve = true;
    use_cache = false;
  }

let small_inst = Util.random_inst2 ~seed:7 ~x:8 ~y:8 ~bound:4
let hard_inst = Util.random_inst2 ~seed:42 ~x:80 ~y:80 ~bound:200

(* ---- body codecs ------------------------------------------------------ *)

let roundtrip_request req =
  match Proto.decode_request (Proto.encode_request req) with
  | Error (_, m) -> Alcotest.failf "request did not round-trip: %s" m
  | Ok got -> (
      match (req, got) with
      | ( Proto.Solve { inst = ia; opts = oa },
          Proto.Solve { inst = ib; opts = ob } ) ->
          Alcotest.(check bool) "instance round-trips" true (same_inst ia ib);
          Alcotest.(check bool) "options round-trip" true (oa = ob)
      | a, b -> Alcotest.(check bool) "request round-trips" true (a = b))

let test_request_roundtrips () =
  roundtrip_request Proto.Ping;
  roundtrip_request Proto.Stats;
  roundtrip_request Proto.Shutdown;
  roundtrip_request
    (Proto.Solve { inst = small_inst; opts = Proto.default_solve_options });
  roundtrip_request
    (Proto.Solve
       {
         inst = Util.random_inst3 ~seed:3 ~x:3 ~y:4 ~z:2 ~bound:6;
         opts =
           {
             Proto.deadline_s = Some 0.25;
             priority = -3;
             budget = Some 1234;
             improve = false;
             use_cache = false;
           };
       });
  (* v3 delta requests: every delta shape, with and without a budget *)
  roundtrip_request
    (Proto.Delta
       { fp = 0x1234_abcdL; delta = D.Bump { v = 3; dw = -2 }; budget = Some 50 });
  roundtrip_request
    (Proto.Delta
       {
         fp = Int64.min_int;
         delta = D.Batch [| (0, 2); (7, -1); (0, 3) |];
         budget = None;
       });
  roundtrip_request
    (Proto.Delta
       {
         fp = -1L;
         delta = D.Extend { slabs = 2; w = [| 1; 0; 3; 2; 2; 0 |] };
         budget = None;
       })

let roundtrip_response resp =
  match Proto.decode_response (Proto.encode_response resp) with
  | Error m -> Alcotest.failf "response did not round-trip: %s" m
  | Ok got -> Alcotest.(check bool) "response round-trips" true (resp = got)

let test_response_roundtrips () =
  roundtrip_response (Proto.Pong { version = Proto.version });
  List.iter
    (fun degraded ->
      roundtrip_response
        (Proto.Solution
           {
             Proto.starts = [| 0; 3; 7; 12 |];
             maxcolor = 14;
             lower_bound = 12;
             provenance = "heuristic:BDP";
             proven_optimal = false;
             elapsed_s = 0.125;
             cache_hit = true;
             resumed = true;
             degraded;
             fingerprint = 0xdeadbeefL;
           }))
    [ None; Some Proto.Shrunk_budget; Some Proto.Heuristic_only ];
  List.iter
    (fun code ->
      roundtrip_response
        (Proto.Shed { code; depth = 5; message = "busy" }))
    [ Proto.Queue_full; Proto.Too_large; Proto.Expired_in_queue ];
  List.iter
    (fun code ->
      roundtrip_response (Proto.Error { code; message = "boom" }))
    [
      Proto.Bad_frame; Proto.Bad_version; Proto.Bad_request;
      Proto.Cert_failed; Proto.Internal; Proto.Conn_timeout;
      Proto.Unknown_fingerprint; Proto.Not_primary;
    ];
  roundtrip_response (Proto.Stats_reply { json = {|{"server":{}}|} });
  roundtrip_response Proto.Shutting_down;
  roundtrip_request Proto.Health;
  List.iter
    (fun brownout ->
      List.iter
        (fun role ->
          roundtrip_response
            (Proto.Health_reply
               {
                 Proto.ready = true;
                 draining = false;
                 queue_depth = 3;
                 running = 2;
                 connections = 7;
                 brownout;
                 uptime_s = 12.5;
                 role;
                 applied_seq = 41;
                 replication_lag = 3;
                 last_scrub_s = 7.25;
                 quarantined = 1;
               }))
        [ Proto.Primary; Proto.Standby ])
    [ None; Some Proto.Shrunk_budget; Some Proto.Heuristic_only ];
  (* v4 replication messages *)
  roundtrip_request (Proto.Replicate { from_seq = 17 });
  roundtrip_request Proto.Promote;
  roundtrip_response (Proto.Op { seq = 3; head = 9; payload = "op-bytes" });
  roundtrip_response (Proto.Repl_heartbeat { head = 12 });
  roundtrip_response (Proto.Promoted { applied_seq = 12 })

let qtest_solve_roundtrip =
  Util.qtest ~count:60 "solve request round-trips" Util.gen_inst2
    (fun inst ->
      match
        Proto.decode_request
          (Proto.encode_request
             (Proto.Solve { inst; opts = Proto.default_solve_options }))
      with
      | Ok (Proto.Solve { inst = got; _ }) -> same_inst inst got
      | _ -> false)

(* decode fails closed: version skew is typed, every other malformation
   is [Bad_request], and none of them raise *)
let expect_reject name body expected =
  match Proto.decode_request body with
  | Ok _ -> Alcotest.failf "%s: decoded a malformed body" name
  | Error (code, _) ->
      Alcotest.(check string)
        name
        (Proto.error_code_to_string expected)
        (Proto.error_code_to_string code)

let test_decode_rejects () =
  let wrong_version =
    let b = Codec.W.create () in
    Codec.W.int b (Proto.version + 1);
    Codec.W.int b 0;
    Codec.W.contents b
  in
  expect_reject "future version" wrong_version Proto.Bad_version;
  let unknown_tag =
    let b = Codec.W.create () in
    Codec.W.int b Proto.version;
    Codec.W.int b 99;
    Codec.W.contents b
  in
  expect_reject "unknown tag" unknown_tag Proto.Bad_request;
  let solve =
    Proto.encode_request
      (Proto.Solve { inst = small_inst; opts = Proto.default_solve_options })
  in
  expect_reject "truncated body"
    (String.sub solve 0 (String.length solve / 2))
    Proto.Bad_request;
  expect_reject "trailing bytes" (solve ^ "x") Proto.Bad_request;
  expect_reject "empty body" "" Proto.Bad_request;
  let short_weights =
    (* claims a 3x3 grid but carries five weights: the instance
       validator must reject it, surfaced as a typed decode error *)
    let b = Codec.W.create () in
    Codec.W.int b Proto.version;
    Codec.W.int b 1;
    Codec.W.int b 2;
    Codec.W.int b 3;
    Codec.W.int b 3;
    Codec.W.int_array b [| 1; 2; 3; 4; 5 |];
    Codec.W.contents b
  in
  expect_reject "weight/dims mismatch" short_weights Proto.Bad_request;
  (match Proto.decode_response "" with
  | Ok _ -> Alcotest.fail "decoded an empty response body"
  | Error _ -> ())

(* ---- frame transport -------------------------------------------------- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let write_raw fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "raw write complete" (String.length s) n

let test_frame_roundtrip () =
  with_pipe @@ fun r w ->
  Proto.write_frame w "hello";
  Proto.write_frame w "";
  Proto.write_frame w (String.make 1000 'z');
  Alcotest.(check (result string reject)) "first frame" (Ok "hello")
    (Proto.read_frame r);
  Alcotest.(check (result string reject)) "empty frame" (Ok "")
    (Proto.read_frame r);
  Alcotest.(check (result string reject)) "big frame"
    (Ok (String.make 1000 'z'))
    (Proto.read_frame r);
  Unix.close w;
  (match Proto.read_frame r with
  | Error Proto.Eof -> ()
  | _ -> Alcotest.fail "clean close must read as Eof")

let test_frame_damage () =
  with_pipe (fun r w ->
      write_raw w "IV";
      Unix.close w;
      match Proto.read_frame r with
      | Error Proto.Truncated -> ()
      | _ -> Alcotest.fail "partial header must be Truncated");
  with_pipe (fun r w ->
      write_raw w "XXXX\x05\x00\x00\x00hello";
      match Proto.read_frame r with
      | Error Proto.Bad_magic -> ()
      | _ -> Alcotest.fail "wrong magic must be Bad_magic");
  with_pipe (fun r w ->
      write_raw w "IVCR\x0a\x00\x00\x00hi";
      Unix.close w;
      match Proto.read_frame r with
      | Error Proto.Truncated -> ()
      | _ -> Alcotest.fail "short body must be Truncated")

let test_frame_oversized_stays_in_sync () =
  with_pipe @@ fun r w ->
  Proto.write_frame w (String.make 100 'a');
  Proto.write_frame w "after";
  (match Proto.read_frame ~max_frame:16 r with
  | Error (Proto.Oversized 100) -> ()
  | _ -> Alcotest.fail "over-cap body must be Oversized");
  (* the oversized body was consumed, so the stream is still in sync *)
  Alcotest.(check (result string reject)) "next frame still parses"
    (Ok "after")
    (Proto.read_frame ~max_frame:16 r)

(* ---- the daemon end to end -------------------------------------------- *)

let with_server ?(workers = 1) ?(queue_capacity = 8) ?(cache_capacity = 8)
    ?max_vertices ?max_frame ?idle_timeout_s ?io_timeout_s ?brownout_low
    ?brownout_high ?repair_capacity f =
  let path = Filename.temp_file "ivc_test" ".sock" in
  let addr = Server.Unix_sock path in
  let base = Server.default_config addr in
  let dflt v d = Option.value v ~default:d in
  let cfg =
    {
      base with
      Server.workers;
      queue_capacity;
      cache_capacity;
      max_vertices = dflt max_vertices base.Server.max_vertices;
      max_frame = dflt max_frame base.Server.max_frame;
      idle_timeout_s = dflt idle_timeout_s base.Server.idle_timeout_s;
      io_timeout_s = dflt io_timeout_s base.Server.io_timeout_s;
      brownout_low = dflt brownout_low base.Server.brownout_low;
      brownout_high = dflt brownout_high base.Server.brownout_high;
      repair_capacity = dflt repair_capacity base.Server.repair_capacity;
    }
  in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f addr)

(* Every e2e test wants a live connection or a loud failure. *)
let connect addr =
  match Client.connect addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect failed: %s" (Client.error_to_string e)

let solve_ok addr ~opts inst =
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.solve c ~opts inst with
  | Ok (Proto.Solution s) -> s
  | Ok _ -> Alcotest.fail "expected a solution"
  | Error e -> Alcotest.failf "solve failed: %s" (Client.error_to_string e)

let test_e2e_solve_and_cache () =
  with_server @@ fun addr ->
  let s1 = solve_ok addr ~opts:fast_opts small_inst in
  let mc = Cert.assert_ok small_inst s1.Proto.starts in
  Alcotest.(check int) "reported maxcolor certified" s1.Proto.maxcolor mc;
  Alcotest.(check bool) "first solve misses the cache" false
    s1.Proto.cache_hit;
  Alcotest.(check bool) "lower bound below maxcolor" true
    (s1.Proto.lower_bound <= s1.Proto.maxcolor);
  let s2 = solve_ok addr ~opts:fast_opts small_inst in
  Alcotest.(check bool) "repeat hits the cache" true s2.Proto.cache_hit;
  Alcotest.(check int) "cached maxcolor matches" s1.Proto.maxcolor
    s2.Proto.maxcolor;
  Alcotest.(check bool) "fingerprints agree" true
    (Int64.equal s1.Proto.fingerprint s2.Proto.fingerprint);
  ignore (Cert.assert_ok small_inst s2.Proto.starts);
  let s3 =
    solve_ok addr ~opts:{ fast_opts with Proto.use_cache = false } small_inst
  in
  Alcotest.(check bool) "no-cache bypasses the cache" false s3.Proto.cache_hit

(* ---- incremental repair over the wire --------------------------------- *)

let delta_ok c ?budget ~fp d =
  match Client.delta c ?budget ~fp d with
  | Ok (Proto.Solution s) -> s
  | Ok (Proto.Error { code; message }) ->
      Alcotest.failf "delta answered %s: %s"
        (Proto.error_code_to_string code)
        message
  | Ok _ -> Alcotest.fail "expected a solution to the delta"
  | Error e -> Alcotest.failf "delta failed: %s" (Client.error_to_string e)

let apply_mirror inst d =
  match D.apply_pure inst d with
  | Ok inst' -> inst'
  | Error m -> Alcotest.failf "mirror apply: %s" m

(* Solve once, then chain deltas off the solve's fingerprint. Every
   reply is verified against a client-side mirror: the instance after
   [apply_pure] and the chain key after [chain_fp] — the server never
   gets to claim a repair the client cannot re-certify. *)
let test_e2e_delta_repair () =
  with_server @@ fun addr ->
  ignore (solve_ok addr ~opts:fast_opts small_inst);
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let step (inst, fp) d =
    let s = delta_ok c ~fp d in
    let inst' = apply_mirror inst d in
    let fp' = D.chain_fp fp d in
    (match Client.verify_delta ~expect_fp:fp' inst' s with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "delta reply failed verification: %s"
          (Client.error_to_string e));
    Alcotest.(check bool) "delta replies are repairs, not cache hits" false
      s.Proto.cache_hit;
    Alcotest.(check int) "starts cover the drifted instance"
      (S.n_vertices inst') (Array.length s.Proto.starts);
    (inst', fp')
  in
  let inst, fp =
    List.fold_left step
      (small_inst, Snapshot.fingerprint small_inst)
      [
        D.Bump { v = 0; dw = 2 };
        D.Batch [| (5, 3); (9, 1); (5, -2) |];
        D.Extend { slabs = 1; w = Array.make 8 1 };
        D.Bump { v = 70; dw = 4 };
      ]
  in
  (* budget 0 forbids repair: the server falls back to the full sweep
     and says so in the provenance — still certified, same chain *)
  let d = D.Bump { v = 1; dw = 1 } in
  let s = delta_ok c ~budget:0 ~fp d in
  Alcotest.(check string) "budget 0 answers by full resolve" "resolved"
    s.Proto.provenance;
  (match Client.verify_delta ~expect_fp:(D.chain_fp fp d) (apply_mirror inst d) s with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "resolved reply failed verification: %s"
        (Client.error_to_string e));
  (* the spent key is gone: replaying the original delta chain head
     must now miss — the chain advanced past it *)
  match Client.delta c ~fp:(Snapshot.fingerprint small_inst) d with
  | Ok (Proto.Error { code = Proto.Unknown_fingerprint; _ }) -> ()
  | Ok _ -> Alcotest.fail "a spent chain key must answer unknown"
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e)

let test_e2e_delta_unknown_and_bad () =
  with_server @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* no solve yet: any fingerprint is unknown *)
  (match Client.delta c ~fp:0x5eedL (D.Bump { v = 0; dw = 1 }) with
  | Ok (Proto.Error { code = Proto.Unknown_fingerprint; _ }) -> ()
  | Ok _ -> Alcotest.fail "unsolved fingerprint must be unknown"
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e));
  ignore (solve_ok addr ~opts:fast_opts small_inst);
  let fp = Snapshot.fingerprint small_inst in
  (* a malformed delta against live repair state is typed Bad_request
     and must not advance or poison the chain *)
  (match Client.delta c ~fp (D.Bump { v = 100_000; dw = 1 }) with
  | Ok (Proto.Error { code = Proto.Bad_request; _ }) -> ()
  | Ok _ -> Alcotest.fail "out-of-range vertex must be Bad_request"
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e));
  (* a wire-supplied slab count whose product wraps mod 2^63 to a
     plausible payload length ((2^60 + 1) * 8 = 8 with slice 8) must be
     a typed rejection, not a crash that wedges the repair table *)
  (match
     Client.delta c ~fp
       (D.Extend { slabs = (1 lsl 60) + 1; w = Array.make 8 1 })
   with
  | Ok (Proto.Error { code = Proto.Bad_request; _ }) -> ()
  | Ok _ -> Alcotest.fail "overflowing extend must be Bad_request"
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e));
  let d = D.Bump { v = 0; dw = 1 } in
  let s = delta_ok c ~fp d in
  match
    Client.verify_delta ~expect_fp:(D.chain_fp fp d)
      (apply_mirror small_inst d) s
  with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "chain did not survive the rejected delta: %s"
        (Client.error_to_string e)

(* A long delta chain against a capacity-1 repair table: every apply
   strands its predecessor key in the eviction FIFO, so this is the
   workload that used to grow the queue one node per delta forever.
   The chain must keep answering, and afterwards the stats must show a
   table that never outgrew its capacity. *)
let test_e2e_delta_fifo_bounded () =
  with_server ~repair_capacity:1 @@ fun addr ->
  ignore (solve_ok addr ~opts:fast_opts small_inst);
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let inst = ref small_inst and fp = ref (Snapshot.fingerprint small_inst) in
  for i = 1 to 50 do
    let d = D.Bump { v = i mod S.n_vertices small_inst; dw = 1 } in
    let s = delta_ok c ~fp:!fp d in
    let inst' = apply_mirror !inst d in
    let fp' = D.chain_fp !fp d in
    (match Client.verify_delta ~expect_fp:fp' inst' s with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "delta %d failed verification: %s" i
          (Client.error_to_string e));
    Alcotest.(check bool) "delta replies are not cache hits" false
      s.Proto.cache_hit;
    inst := inst';
    fp := fp'
  done;
  match Client.stats c with
  | Error e -> Alcotest.failf "stats failed: %s" (Client.error_to_string e)
  | Ok json ->
      let has needle =
        let n = String.length needle and m = String.length json in
        let rec at i =
          i + n <= m && (String.sub json i n = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool) "repair table stayed within capacity" true
        (has {|"repair":{"size":1,"capacity":1,|})

let test_e2e_ping_and_stats () =
  with_server @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.ping c with
  | Ok v -> Alcotest.(check int) "protocol version" Proto.version v
  | Error e -> Alcotest.failf "ping failed: %s" (Client.error_to_string e));
  ignore (solve_ok addr ~opts:fast_opts small_inst);
  match Client.stats c with
  | Error e -> Alcotest.failf "stats failed: %s" (Client.error_to_string e)
  | Ok json ->
      let has needle =
        let n = String.length needle and m = String.length json in
        let rec at i =
          i + n <= m && (String.sub json i n = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool) "stats has a server block" true (has "\"server\"");
      Alcotest.(check bool) "stats carries request counters" true
        (has "server.requests")

let test_e2e_too_large () =
  with_server ~max_vertices:50 @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.solve c ~opts:fast_opts small_inst with
  | Ok (Proto.Shed { code = Proto.Too_large; _ }) -> ()
  | Ok _ -> Alcotest.fail "64 vertices over a 50-vertex cap must shed"
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e)

(* A damaged frame must never take down the connection unless the
   stream is desynchronized: undecodable and oversized bodies get a
   typed error and the next request still works; bad magic is fatal. *)
let test_e2e_damage_survival () =
  with_server ~max_frame:1024 @@ fun addr ->
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      (* right version, junk after it: decode fails closed, typed *)
      let garbage =
        let b = Codec.W.create () in
        Codec.W.int b Proto.version;
        Codec.W.contents b ^ "junk"
      in
      Proto.write_frame fd garbage;
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Error { code = Proto.Bad_request; _ }) -> ()
          | _ -> Alcotest.fail "garbage body must answer Bad_request")
      | Error e ->
          Alcotest.failf "no reply to a garbage body: %s"
            (Proto.frame_error_to_string e));
      Proto.write_frame fd (String.make 2000 'j');
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Error { code = Proto.Bad_frame; _ }) -> ()
          | _ -> Alcotest.fail "oversized frame must answer Bad_frame")
      | Error e ->
          Alcotest.failf "no reply to an oversized frame: %s"
            (Proto.frame_error_to_string e));
      (* the connection survived both — a normal request still works *)
      Proto.write_frame fd (Proto.encode_request Proto.Ping);
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Pong _) -> ()
          | _ -> Alcotest.fail "ping after damage must pong")
      | Error e ->
          Alcotest.failf "connection did not survive: %s"
            (Proto.frame_error_to_string e));
      (* bad magic desynchronizes: typed error, then the server hangs up *)
      write_raw fd "QQQQ\x00\x00\x00\x00";
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Error { code = Proto.Bad_frame; _ }) -> ()
          | _ -> Alcotest.fail "bad magic must answer Bad_frame")
      | Error e ->
          Alcotest.failf "no reply to bad magic: %s"
            (Proto.frame_error_to_string e));
      match Proto.read_frame fd with
      | Error (Proto.Eof | Proto.Truncated) -> ()
      | _ -> Alcotest.fail "bad magic must close the connection")

(* Occupy the single worker with a deadline-burning solve, then watch
   the admission controller shed: queue capacity 0 means anything
   beyond the in-flight request answers Queue_full. *)
let spawn_slow addr seconds =
  let out = ref None in
  let th =
    Thread.create
      (fun () ->
        match solve_ok addr ~opts:(slow_opts seconds) hard_inst with
        | s -> out := Some (Ok s)
        | exception e -> out := Some (Error (Printexc.to_string e)))
      ()
  in
  fun () ->
    Thread.join th;
    match !out with
    | Some (Ok s) -> s
    | Some (Error m) -> Alcotest.failf "slow solve failed: %s" m
    | None -> Alcotest.fail "slow solve produced nothing"

let test_e2e_queue_full_shed () =
  with_server ~workers:1 ~queue_capacity:0 ~cache_capacity:0 @@ fun addr ->
  let join_slow = spawn_slow addr 1.5 in
  Thread.delay 0.4;
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.solve c ~opts:fast_opts small_inst with
  | Ok (Proto.Shed { code = Proto.Queue_full; _ }) -> ()
  | Ok _ -> Alcotest.fail "saturated server must shed Queue_full"
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e));
  ignore (join_slow ())

(* The deadline token is minted at admission, so time spent queued
   behind the busy worker counts: a request whose deadline passes in
   the queue is shed typed, never solved late. *)
let test_e2e_expired_in_queue () =
  with_server ~workers:1 ~cache_capacity:0 @@ fun addr ->
  let join_slow = spawn_slow addr 1.2 in
  Thread.delay 0.3;
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match
     Client.solve c
       ~opts:{ fast_opts with Proto.deadline_s = Some 0.2 }
       small_inst
   with
  | Ok (Proto.Shed { code = Proto.Expired_in_queue; _ }) -> ()
  | Ok _ -> Alcotest.fail "a deadline spent queueing must shed Expired"
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e));
  ignore (join_slow ())

(* Two workers: a deadline-burning request on one must not delay a
   fast request on the other — per-request deadlines are isolated. *)
let test_e2e_deadline_isolation () =
  with_server ~workers:2 ~cache_capacity:0 @@ fun addr ->
  let join_slow = spawn_slow addr 1.5 in
  Thread.delay 0.2;
  let t0 = Ivc_obs.now_ns () in
  let fast = solve_ok addr ~opts:fast_opts small_inst in
  let waited = Ivc_obs.elapsed_s ~since:t0 in
  ignore (Cert.assert_ok small_inst fast.Proto.starts);
  Alcotest.(check bool)
    (Printf.sprintf "fast request not stalled behind slow one (%.2fs)" waited)
    true (waited < 1.0);
  let s = join_slow () in
  ignore (Cert.assert_ok hard_inst s.Proto.starts)

let test_e2e_shutdown_request () =
  let path = Filename.temp_file "ivc_test" ".sock" in
  let srv = Server.start (Server.default_config (Server.Unix_sock path)) in
  let c = connect (Server.Unix_sock path) in
  (match Client.shutdown c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" (Client.error_to_string e));
  Client.close c;
  (* wait must see the client-requested shutdown; stop is idempotent *)
  Server.wait srv;
  Server.stop srv;
  Server.stop srv;
  try Sys.remove path with Sys_error _ -> ()

(* ---- netfault plans --------------------------------------------------- *)

let test_netfault_plan () =
  let p = Net.parse "seed=7,delay=0.2:0.002,tear=0.1,reset=0.05,stall=0.05:0.5,dup=0.1" in
  Alcotest.(check int) "seed parses" 7 p.Net.seed;
  Alcotest.(check bool) "not the empty plan" false (Net.is_none p);
  Alcotest.(check bool) "canonical form round-trips" true
    (Net.parse (Net.to_string p) = p);
  Alcotest.(check bool) "empty plan is none" true (Net.is_none (Net.parse ""));
  (match Net.parse "tear=1.5" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability above 1 must be rejected");
  (match Net.parse "bogus=1" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown field must be rejected");
  (* decisions are pure in (seed, stream, chunk) *)
  for stream = 0 to 5 do
    for chunk = 0 to 20 do
      Alcotest.(check bool) "decide is deterministic" true
        (Net.decide p ~stream ~chunk = Net.decide p ~stream ~chunk)
    done
  done;
  let heavy = Net.parse "seed=3,reset=1.0" in
  Alcotest.(check bool) "probability 1 always fires" true
    (Net.decide heavy ~stream:0 ~chunk:0 = Some Net.Reset);
  let quiet = Net.parse "seed=3" in
  Alcotest.(check bool) "zero probabilities never fire" true
    (Net.decide quiet ~stream:0 ~chunk:0 = None)

(* ---- connection deadlines (slow loris) -------------------------------- *)

(* A client that starts a frame and stalls must be cut off by the io
   window — and the cut must be typed (Conn_timeout best-effort
   notice, then close) and must not damage the server: a well-behaved
   request right after still gets served. *)
let slow_loris_check ~stalled_bytes =
  with_server ~idle_timeout_s:5.0 ~io_timeout_s:0.25 @@ fun addr ->
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      write_raw fd stalled_bytes;
      (* now stall: the server's io window expires, not ours *)
      (match Proto.read_frame ~idle_timeout_s:5.0 fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Error { code = Proto.Conn_timeout; _ }) -> ()
          | _ -> Alcotest.fail "stalled frame must answer Conn_timeout")
      | Error (Proto.Eof | Proto.Truncated) ->
          (* the notice is best-effort; the close is the contract *)
          ()
      | Error e ->
          Alcotest.failf "unexpected reply to a stalled frame: %s"
            (Proto.frame_error_to_string e));
      (match Proto.read_frame ~idle_timeout_s:5.0 fd with
      | Error (Proto.Eof | Proto.Truncated) -> ()
      | Ok _ -> Alcotest.fail "server must close a stalled connection"
      | Error e ->
          Alcotest.failf "stalled connection not closed: %s"
            (Proto.frame_error_to_string e));
      (* the server survived the loris: normal service continues *)
      ignore (solve_ok addr ~opts:fast_opts small_inst))

let test_slow_loris_header () = slow_loris_check ~stalled_bytes:"IV"

let test_slow_loris_body () =
  (* full header claiming 10 bytes, then only 2 of them *)
  slow_loris_check ~stalled_bytes:"IVCR\x0a\x00\x00\x00hi"

(* A half-open peer (sent its request, shut down its write side) must
   still receive its response; the server then sees EOF and closes
   without incident. *)
let test_half_open_connection () =
  with_server @@ fun addr ->
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      Proto.write_frame fd (Proto.encode_request Proto.Ping);
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (match Proto.read_frame fd with
      | Ok body -> (
          match Proto.decode_response body with
          | Ok (Proto.Pong _) -> ()
          | _ -> Alcotest.fail "half-open ping must still pong")
      | Error e ->
          Alcotest.failf "no response on a half-open connection: %s"
            (Proto.frame_error_to_string e));
      (match Proto.read_frame fd with
      | Error Proto.Eof -> ()
      | _ -> Alcotest.fail "server must close after the peer's EOF");
      (* and the server is still healthy *)
      ignore (solve_ok addr ~opts:fast_opts small_inst))

(* ---- brownout --------------------------------------------------------- *)

let test_brownout_watermarks () =
  let cfg = Server.default_config (Server.Unix_sock "unused.sock") in
  let at occupancy = Server.brownout_of cfg ~occupancy in
  Alcotest.(check bool) "idle server is not degraded" true (at 0.0 = None);
  Alcotest.(check bool) "below low watermark" true (at 0.74 = None);
  Alcotest.(check bool) "at low watermark" true
    (at 0.75 = Some Proto.Shrunk_budget);
  Alcotest.(check bool) "between watermarks" true
    (at 0.90 = Some Proto.Shrunk_budget);
  Alcotest.(check bool) "at high watermark" true
    (at 0.95 = Some Proto.Heuristic_only);
  Alcotest.(check bool) "saturated" true (at 1.0 = Some Proto.Heuristic_only);
  let off = { cfg with Server.brownout_low = 2.0; brownout_high = 2.0 } in
  Alcotest.(check bool) "watermarks above 1 disable brownout" true
    (Server.brownout_of off ~occupancy:1.0 = None)

(* The saturation experiment behind the brownout design: the same
   staggered overload either sheds (brownout off) or completes every
   request degraded-but-certified (brownout on). Load: one worker,
   queue capacity 1, three connections each sending two sequential
   deadline-burning solves, arrivals staggered so the queue — not the
   accept loop — is the bottleneck. *)
let brownout_load addr =
  let lock = Mutex.create () in
  let sheds = ref 0 and degraded = ref 0 and solutions = ref [] in
  let worker i =
    Thread.delay (Float.of_int i *. 0.15);
    let c = connect addr in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for _ = 1 to 2 do
      match Client.solve c ~opts:(slow_opts 0.5) hard_inst with
      | Ok (Proto.Solution s) ->
          ignore (Cert.assert_ok hard_inst s.Proto.starts);
          Mutex.lock lock;
          if s.Proto.degraded <> None then incr degraded;
          solutions := s :: !solutions;
          Mutex.unlock lock
      | Ok (Proto.Shed _) ->
          Mutex.lock lock;
          incr sheds;
          Mutex.unlock lock
      | Ok _ -> Alcotest.fail "unexpected response under load"
      | Error e ->
          Alcotest.failf "request failed under load: %s"
            (Client.error_to_string e)
    done
  in
  let threads = List.init 3 (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  (!sheds, !degraded, List.length !solutions)

let test_e2e_brownout_conversion () =
  (* watermarks above 1: brownout disabled, overload sheds *)
  let sheds_off, _, _ =
    with_server ~workers:1 ~queue_capacity:1 ~cache_capacity:0
      ~brownout_low:2.0 ~brownout_high:2.0 brownout_load
  in
  Alcotest.(check bool)
    (Printf.sprintf "overload sheds without brownout (%d sheds)" sheds_off)
    true (sheds_off >= 1);
  (* watermarks at 0: every admitted request runs heuristics only,
     finishes in milliseconds, and the queue never fills — the sheds
     become answers *)
  let sheds_on, degraded_on, solved_on =
    with_server ~workers:1 ~queue_capacity:1 ~cache_capacity:0
      ~brownout_low:0.0 ~brownout_high:0.0 brownout_load
  in
  Alcotest.(check int) "brownout sheds nothing" 0 sheds_on;
  Alcotest.(check int) "every request answered" 6 solved_on;
  Alcotest.(check int) "every answer marked degraded" 6 degraded_on

(* ---- client retry schedule -------------------------------------------- *)

let test_retry_schedule () =
  let p =
    {
      Client.default_retry with
      Client.base_delay_s = 0.05;
      max_delay_s = 1.0;
      jitter = 0.0;
      seed = 0;
    }
  in
  Alcotest.(check (float 1e-9)) "attempt 0" 0.05
    (Client.retry_delay_s p ~attempt:0);
  Alcotest.(check (float 1e-9)) "attempt 1 doubles" 0.1
    (Client.retry_delay_s p ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2 doubles again" 0.2
    (Client.retry_delay_s p ~attempt:2);
  Alcotest.(check (float 1e-9)) "cap reached" 1.0
    (Client.retry_delay_s p ~attempt:10);
  let j = { p with Client.jitter = 0.5; seed = 42 } in
  for a = 0 to 8 do
    let d = Client.retry_delay_s j ~attempt:a in
    let full = Float.min j.Client.max_delay_s (0.05 *. (2.0 ** Float.of_int a)) in
    Alcotest.(check bool) "jitter only shrinks" true
      (d <= full +. 1e-9 && d >= (0.5 *. full) -. 1e-9);
    Alcotest.(check (float 1e-12)) "deterministic in (seed, attempt)" d
      (Client.retry_delay_s j ~attempt:a)
  done;
  Alcotest.(check bool) "different seeds draw different jitter" true
    (Client.retry_delay_s j ~attempt:3
    <> Client.retry_delay_s { j with Client.seed = 43 } ~attempt:3)

(* ---- supervisor policy ------------------------------------------------ *)

let test_supervise_policy () =
  let cfg =
    {
      Supervise.seed = 3;
      base_backoff_s = 0.1;
      max_backoff_s = 1.0;
      jitter = 0.0;
      min_uptime_s = 1.0;
      max_rapid_crashes = 3;
    }
  in
  let st = Supervise.initial in
  (* clean exits and operator signals stop the supervisor *)
  (match Supervise.on_exit cfg st ~uptime_s:0.01 ~status:(Unix.WEXITED 0) with
  | _, Supervise.Stop_clean -> ()
  | _ -> Alcotest.fail "exit 0 must stop the supervisor");
  (match
     Supervise.on_exit cfg st ~uptime_s:0.01
       ~status:(Unix.WSIGNALED Sys.sigterm)
   with
  | _, Supervise.Stop_clean -> ()
  | _ -> Alcotest.fail "SIGTERM must stop the supervisor");
  (* a rapid-crash loop escalates backoff then gives up *)
  let crash st =
    Supervise.on_exit cfg st ~uptime_s:0.01 ~status:(Unix.WEXITED 2)
  in
  let expect_restart name want st =
    match crash st with
    | st', Supervise.Restart_after d ->
        Alcotest.(check (float 1e-9)) name want d;
        st'
    | _ -> Alcotest.failf "%s: expected a restart" name
  in
  let st = expect_restart "first crash backs off base" 0.1 st in
  let st = expect_restart "second crash doubles" 0.2 st in
  let st = expect_restart "third crash doubles again" 0.4 st in
  (match crash st with
  | _, Supervise.Give_up _ -> ()
  | _ -> Alcotest.fail "a crash loop must give up");
  (* a healthy stretch resets the streak *)
  let st = expect_restart "crash one" 0.1 Supervise.initial in
  let st = expect_restart "crash two" 0.2 st in
  (match
     Supervise.on_exit cfg st ~uptime_s:60.0 ~status:(Unix.WEXITED 2)
   with
  | st', Supervise.Restart_after d ->
      Alcotest.(check (float 1e-9)) "healthy uptime resets backoff" 0.1 d;
      Alcotest.(check int) "streak reset" 1 st'.Supervise.streak
  | _ -> Alcotest.fail "a crash after healthy uptime must restart");
  (* jittered backoff is capped, positive and deterministic *)
  let jcfg = { cfg with Supervise.jitter = 0.5; seed = 11 } in
  for a = 0 to 9 do
    let d = Supervise.backoff_s jcfg ~attempt:a in
    Alcotest.(check bool) "backoff within (0, max]" true
      (d > 0.0 && d <= jcfg.Supervise.max_backoff_s);
    Alcotest.(check (float 1e-12)) "backoff deterministic" d
      (Supervise.backoff_s jcfg ~attempt:a)
  done

(* The policy's edges: "rapid" is strictly below [min_uptime_s], a
   healthy run refunds the whole rapid-crash budget (not just one
   crash), and backoff saturates exactly at the cap. *)
let test_supervise_boundaries () =
  let cfg =
    {
      Supervise.seed = 5;
      base_backoff_s = 0.1;
      max_backoff_s = 1.0;
      jitter = 0.0;
      min_uptime_s = 1.0;
      max_rapid_crashes = 3;
    }
  in
  let crash st uptime =
    Supervise.on_exit cfg st ~uptime_s:uptime ~status:(Unix.WEXITED 2)
  in
  let rapid st =
    match crash st 0.01 with
    | st', Supervise.Restart_after _ -> st'
    | _ -> Alcotest.fail "a rapid crash under the cap must restart"
  in
  (* a crash at exactly min_uptime is a healthy run *)
  let mid = { Supervise.streak = 2; restarts = 2 } in
  (match crash mid cfg.Supervise.min_uptime_s with
  | st', Supervise.Restart_after _ ->
      Alcotest.(check int) "uptime = min_uptime resets the streak" 1
        st'.Supervise.streak
  | _ -> Alcotest.fail "the boundary crash must restart");
  (match crash mid (cfg.Supervise.min_uptime_s -. 1e-9) with
  | st', Supervise.Restart_after _ ->
      Alcotest.(check int) "just under min_uptime grows the streak" 3
        st'.Supervise.streak
  | _ -> Alcotest.fail "a rapid crash under the cap must restart");
  (* ride to the cap, recover, and the full budget is available again *)
  let st = rapid (rapid (rapid Supervise.initial)) in
  Alcotest.(check int) "streak at the cap" 3 st.Supervise.streak;
  let st =
    match crash st 60.0 with
    | st', Supervise.Restart_after _ -> st'
    | _ -> Alcotest.fail "a crash after a healthy run must restart"
  in
  let st = rapid (rapid st) in
  Alcotest.(check int) "budget refunded by the healthy run" 3
    st.Supervise.streak;
  (match crash st 0.01 with
  | _, Supervise.Give_up _ -> ()
  | _ -> Alcotest.fail "exceeding the refunded budget must give up");
  (* zero-jitter backoff is monotone and pins to the cap forever *)
  let prev = ref 0.0 in
  for a = 0 to 11 do
    let d = Supervise.backoff_s cfg ~attempt:a in
    Alcotest.(check bool) "backoff monotone under zero jitter" true
      (d >= !prev);
    prev := d
  done;
  Alcotest.(check (float 1e-12)) "cap reached" cfg.Supervise.max_backoff_s
    (Supervise.backoff_s cfg ~attempt:4);
  Alcotest.(check (float 1e-12)) "cap saturates, no overflow"
    cfg.Supervise.max_backoff_s
    (Supervise.backoff_s cfg ~attempt:60)

(* ---- typed client failures -------------------------------------------- *)

let test_connect_errors_typed () =
  (match Client.connect (Server.Unix_sock "/nonexistent/dir/ivc.sock") with
  | Error (Client.Connect _) -> ()
  | Error e ->
      Alcotest.failf "missing socket path must be Connect, got %s"
        (Client.error_to_string e)
  | Ok c ->
      Client.close c;
      Alcotest.fail "connected to a nonexistent socket");
  (* a port that was bound and released refuses connections *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  (match Client.connect ~timeout_s:2.0 (Server.Tcp ("127.0.0.1", port)) with
  | Error (Client.Connect _) | Error Client.Timeout -> ()
  | Error e ->
      Alcotest.failf "refused connect must be typed Connect, got %s"
        (Client.error_to_string e)
  | Ok c ->
      Client.close c;
      Alcotest.fail "connected to a closed port")

let test_broken_pipe_typed () =
  let path = Filename.temp_file "ivc_test" ".sock" in
  let srv = Server.start (Server.default_config (Server.Unix_sock path)) in
  let c = connect (Server.Unix_sock path) in
  Fun.protect
    ~finally:(fun () ->
      Client.close c;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Server.stop srv;
  (* the daemon is gone: the request must come back typed — Io or
     Timeout depending on how far the kernel let it get — never as a
     Unix_error or a SIGPIPE kill *)
  (match Client.solve c ~opts:fast_opts small_inst with
  | Error (Client.Io _ | Client.Timeout) -> ()
  | Error e ->
      Alcotest.failf "dead server must surface Io/Timeout, got %s"
        (Client.error_to_string e)
  | Ok _ -> Alcotest.fail "solved against a stopped server");
  (* the connection is marked dead: later calls fail fast, typed *)
  match Client.ping c with
  | Error (Client.Io _) -> ()
  | Error e ->
      Alcotest.failf "dead connection must fail fast with Io, got %s"
        (Client.error_to_string e)
  | Ok _ -> Alcotest.fail "pinged a dead connection"

let test_verify_solution_corrupt () =
  with_server @@ fun addr ->
  let s = solve_ok addr ~opts:fast_opts small_inst in
  (match Client.verify_solution small_inst s with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "honest solution rejected: %s" (Client.error_to_string e));
  let wrong_fp = { s with Proto.fingerprint = Int64.lognot s.Proto.fingerprint } in
  (match Client.verify_solution small_inst wrong_fp with
  | Error (Client.Corrupt _) -> ()
  | _ -> Alcotest.fail "wrong fingerprint must be Corrupt");
  let inflated = { s with Proto.maxcolor = s.Proto.maxcolor + 1 } in
  (match Client.verify_solution small_inst inflated with
  | Error (Client.Corrupt _) -> ()
  | _ -> Alcotest.fail "inflated maxcolor claim must be Corrupt");
  let starts = Array.copy s.Proto.starts in
  starts.(0) <- starts.(0) + 1;
  match Client.verify_solution small_inst { s with Proto.starts = starts } with
  | Error (Client.Corrupt _) -> ()
  | _ -> Alcotest.fail "damaged coloring must be Corrupt"

(* ---- health and the fault proxy --------------------------------------- *)

let test_e2e_health () =
  with_server @@ fun addr ->
  let c = connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.health c with
  | Error e -> Alcotest.failf "health failed: %s" (Client.error_to_string e)
  | Ok h ->
      Alcotest.(check bool) "ready" true h.Proto.ready;
      Alcotest.(check bool) "not draining" false h.Proto.draining;
      Alcotest.(check int) "nothing queued" 0 h.Proto.queue_depth;
      Alcotest.(check int) "nothing running" 0 h.Proto.running;
      Alcotest.(check bool) "this connection counted" true
        (h.Proto.connections >= 1);
      Alcotest.(check bool) "no brownout when idle" true
        (h.Proto.brownout = None);
      Alcotest.(check bool) "uptime non-negative" true (h.Proto.uptime_s >= 0.0)

let with_proxy ~plan f =
  with_server ~workers:1 ~idle_timeout_s:5.0 ~io_timeout_s:2.0 @@ fun addr ->
  let front = Filename.temp_file "ivc_proxy" ".sock" in
  let proxy =
    Net.start ~listen:(Server.Unix_sock front) ~upstream:addr
      ~plan:(Net.parse plan)
  in
  Fun.protect
    ~finally:(fun () ->
      Net.stop proxy;
      try Sys.remove front with Sys_error _ -> ())
    (fun () -> f (Server.Unix_sock front))

let test_e2e_proxy_benign () =
  (* delays and torn frames damage timing, never content: a single
     plain request through the proxy still verifies end to end *)
  with_proxy ~plan:"seed=5,delay=0.5:0.001,tear=0.3" @@ fun front ->
  let s = solve_ok front ~opts:fast_opts small_inst in
  match Client.verify_solution small_inst s with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "proxied solution failed verification: %s"
        (Client.error_to_string e)

let test_e2e_proxy_resets_recovered () =
  (* a reset-heavy link eats individual attempts; the retrying
     verified client must still land a certified answer *)
  with_proxy ~plan:"seed=9,reset=0.3" @@ fun front ->
  let retry =
    {
      Client.default_retry with
      Client.attempts = 10;
      base_delay_s = 0.01;
      max_delay_s = 0.05;
      seed = 9;
      connect_timeout_s = 2.0;
      request_timeout_s = Some 5.0;
    }
  in
  match Client.solve_verified ~retry ~addr:front ~opts:fast_opts small_inst with
  | Ok (Proto.Solution s) -> ignore (Cert.assert_ok small_inst s.Proto.starts)
  | Ok _ -> Alcotest.fail "expected a solution through the flaky link"
  | Error e ->
      Alcotest.failf "retries did not survive the reset plan: %s"
        (Client.error_to_string e)

(* ---- replication, promotion, failover --------------------------------- *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun n -> rm_rf (Filename.concat p n)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

let test_addr_of_string () =
  let ok s want =
    match Client.addr_of_string s with
    | Ok got -> Alcotest.(check bool) s true (got = want)
    | Error m -> Alcotest.failf "%s rejected: %s" s m
  in
  ok "unix:/tmp/x.sock" (Server.Unix_sock "/tmp/x.sock");
  ok "/tmp/plain.sock" (Server.Unix_sock "/tmp/plain.sock");
  ok "example.com:9000" (Server.Tcp ("example.com", 9000));
  List.iter
    (fun s ->
      match Client.addr_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must be rejected" s)
    [ ""; "unix:"; "host:99999"; "host:-1"; "host:nan"; ":4000" ]

(* A full failover story in-process: a WAL-journaling primary with a
   warm standby replaying its op stream; the primary is crash-stopped,
   the standby promoted over the wire, and the promoted daemon must
   serve the replayed solve from cache and keep the replayed delta
   chain alive. *)
let test_e2e_replication_promote () =
  let pdir = temp_dir "ivc-ha-p" and sdir = temp_dir "ivc-ha-s" in
  let psock = Filename.temp_file "ivc_ha_p" ".sock"
  and ssock = Filename.temp_file "ivc_ha_s" ".sock" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ psock; ssock ];
      List.iter
        (fun d -> try rm_rf d with Sys_error _ | Unix.Unix_error _ -> ())
        [ pdir; sdir ])
  @@ fun () ->
  let cfg sock =
    {
      (Server.default_config (Server.Unix_sock sock)) with
      Server.workers = 1;
      queue_capacity = 8;
      cache_capacity = 8;
      repair_capacity = 8;
      wal_fsync = false;
    }
  in
  let primary = Server.start { (cfg psock) with Server.wal_dir = Some pdir } in
  let standby =
    Server.start
      {
        (cfg ssock) with
        Server.wal_dir = Some sdir;
        standby = true;
        lease_s = 300.0;
      }
  in
  let repl =
    Replica.start ~recv_timeout_s:2.0 standby
      ~upstream:(Server.Unix_sock psock)
  in
  Fun.protect
    ~finally:(fun () ->
      Replica.stop repl;
      Server.stop primary;
      Server.stop standby)
  @@ fun () ->
  (* journal a solve and two deltas on the primary *)
  let s0 = solve_ok (Server.Unix_sock psock) ~opts:fast_opts small_inst in
  let c = connect (Server.Unix_sock psock) in
  let inst1, fp1 =
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    List.fold_left
      (fun (inst, fp) d ->
        ignore (delta_ok c ~fp d);
        (apply_mirror inst d, D.chain_fp fp d))
      (small_inst, s0.Proto.fingerprint)
      [ D.Bump { v = 1; dw = 2 }; D.Batch [| (3, 1); (0, 2) |] ]
  in
  (* the warm standby refuses to serve while the primary holds the lease *)
  (let sc = connect (Server.Unix_sock ssock) in
   Fun.protect ~finally:(fun () -> Client.close sc) @@ fun () ->
   match Client.solve sc ~opts:fast_opts small_inst with
   | Ok (Proto.Error { code = Proto.Not_primary; _ }) -> ()
   | Ok _ -> Alcotest.fail "standby served inside the lease"
   | Error e ->
       Alcotest.failf "standby request failed: %s" (Client.error_to_string e));
  (* the op stream drains *)
  let deadline = Unix.gettimeofday () +. 8.0 in
  let rec drain () =
    if Server.repl_applied standby >= Server.repl_head primary then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "replication never drained: applied %d of %d"
        (Server.repl_applied standby)
        (Server.repl_head primary)
    else begin
      Thread.delay 0.02;
      drain ()
    end
  in
  drain ();
  let journaled = Server.repl_head primary in
  Alcotest.(check int) "solve and deltas journaled" 3 journaled;
  (* crash the primary, promote the standby over the wire *)
  Server.kill primary;
  (let sc = connect (Server.Unix_sock ssock) in
   match
     Fun.protect ~finally:(fun () -> Client.close sc) @@ fun () ->
     Client.promote sc
   with
   | Ok applied ->
       Alcotest.(check int) "promotion applied the whole journal" journaled
         applied
   | Error e -> Alcotest.failf "promote failed: %s" (Client.error_to_string e));
  (match Server.role standby with
  | Proto.Primary -> ()
  | Proto.Standby -> Alcotest.fail "promoted standby still reports Standby");
  (* the replayed, re-certified base solve is already in its cache *)
  let s = solve_ok (Server.Unix_sock ssock) ~opts:fast_opts small_inst in
  Alcotest.(check bool) "replayed solve answers from cache" true
    s.Proto.cache_hit;
  Alcotest.(check int) "same certified maxcolor" s0.Proto.maxcolor
    s.Proto.maxcolor;
  ignore (Cert.assert_ok small_inst s.Proto.starts);
  (* and the replayed delta chain is alive: extend it one more step *)
  let d = D.Bump { v = 0; dw = 1 } in
  let sc = connect (Server.Unix_sock ssock) in
  Fun.protect ~finally:(fun () -> Client.close sc) @@ fun () ->
  match Client.delta sc ~fp:fp1 d with
  | Ok (Proto.Solution s) -> (
      match
        Client.verify_delta ~expect_fp:(D.chain_fp fp1 d)
          (apply_mirror inst1 d) s
      with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "replayed chain delta failed verification: %s"
            (Client.error_to_string e))
  | Ok (Proto.Error { code; message }) ->
      Alcotest.failf "replayed chain rejected the delta %s: %s"
        (Proto.error_code_to_string code)
        message
  | Ok _ -> Alcotest.fail "expected a solution"
  | Error e -> Alcotest.failf "delta failed: %s" (Client.error_to_string e)

let test_e2e_client_failover () =
  with_server @@ fun addr ->
  let dead = Filename.temp_file "ivc_dead" ".sock" in
  Sys.remove dead;
  (* first endpoint refuses connections: the answer rides to the second *)
  (match
     Client.solve_failover
       ~endpoints:[ Server.Unix_sock dead; addr ]
       ~opts:fast_opts small_inst
   with
  | Ok (Proto.Solution s, f) ->
      ignore (Cert.assert_ok small_inst s.Proto.starts);
      Alcotest.(check bool) "answer rode the failover path" true
        f.Client.failed_over;
      Alcotest.(check int) "second endpoint answered" 1 f.Client.endpoint_index;
      Alcotest.(check int) "first round sufficed" 0 f.Client.attempt
  | Ok _ -> Alcotest.fail "expected a solution"
  | Error e ->
      Alcotest.failf "failover solve failed: %s" (Client.error_to_string e));
  (* a healthy first endpoint is a clean hit, no failover provenance *)
  match Client.solve_failover ~endpoints:[ addr ] ~opts:fast_opts small_inst with
  | Ok (Proto.Solution _, f) ->
      Alcotest.(check bool) "clean first-endpoint hit" false f.Client.failed_over
  | Ok _ -> Alcotest.fail "expected a solution"
  | Error e ->
      Alcotest.failf "failover solve failed: %s" (Client.error_to_string e)

(* The delta re-key discipline: a clean (unambiguous) retry of a spent
   chain key must surface Unknown_fingerprint — never trigger the
   probe — and delta_failover recovers the same situation by
   re-solving the mirror, whose fingerprint is the new chain key. *)
let test_e2e_delta_rekey_discipline () =
  with_server @@ fun addr ->
  let s0 = solve_ok addr ~opts:fast_opts small_inst in
  let fp = s0.Proto.fingerprint in
  let d = D.Bump { v = 2; dw = 3 } in
  let mirror = apply_mirror small_inst d in
  (* happy path: delta_verified repairs and verifies against the mirror *)
  (match Client.delta_verified ~addr ~fp ~mirror d with
  | Ok (Proto.Solution s) ->
      Alcotest.(check bool) "chain advanced by one link" true
        (Int64.equal s.Proto.fingerprint (D.chain_fp fp d))
  | Ok _ -> Alcotest.fail "expected a solution"
  | Error e ->
      Alcotest.failf "delta_verified failed: %s" (Client.error_to_string e));
  let fp1 = D.chain_fp fp d in
  let d2 = D.Bump { v = 4; dw = 1 } in
  let mirror2 = apply_mirror mirror d2 in
  (* the server applies d2 but the caller never learns: simulate the
     lost answer by issuing it on a throwaway connection *)
  (let c = connect addr in
   Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
   ignore (delta_ok c ~fp:fp1 d2));
  (* the retry is NOT ambiguous (no transport failure happened inside
     this call), so the spent key must answer Unknown, not probe *)
  (match Client.delta_verified ~addr ~fp:fp1 ~mirror:mirror2 d2 with
  | Ok (Proto.Error { code = Proto.Unknown_fingerprint; _ }) -> ()
  | Ok _ -> Alcotest.fail "a clean Unknown must surface, not trigger a probe"
  | Error e ->
      Alcotest.failf "delta_verified failed: %s" (Client.error_to_string e));
  (* delta_failover's fallback re-solves the mirror on the same
     connection — always safe, and the answer carries the new key *)
  match
    Client.delta_failover ~endpoints:[ addr ] ~fp:fp1 ~mirror:mirror2 d2
  with
  | Ok (Proto.Solution s, _) ->
      ignore (Cert.assert_ok mirror2 s.Proto.starts);
      Alcotest.(check bool) "fallback answer keys the new chain" true
        (Int64.equal s.Proto.fingerprint (Snapshot.fingerprint mirror2))
  | Ok _ -> Alcotest.fail "expected a solution"
  | Error e ->
      Alcotest.failf "delta_failover failed: %s" (Client.error_to_string e)

(* Split-brain safety: an unpromoted standby refuses while its lease
   is fresh, serves (without flipping role) once the lease expires
   with no primary contact, and re-arms on renewed contact. *)
let test_e2e_standby_lease_expiry () =
  let sock = Filename.temp_file "ivc_lease" ".sock" in
  let cfg =
    {
      (Server.default_config (Server.Unix_sock sock)) with
      Server.workers = 1;
      standby = true;
      lease_s = 0.4;
    }
  in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove sock with Sys_error _ -> ())
  @@ fun () ->
  let addr = Server.Unix_sock sock in
  let expect_refusal why =
    let c = connect addr in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    match Client.solve c ~opts:fast_opts small_inst with
    | Ok (Proto.Error { code = Proto.Not_primary; _ }) -> ()
    | Ok _ -> Alcotest.fail why
    | Error e ->
        Alcotest.failf "request failed: %s" (Client.error_to_string e)
  in
  expect_refusal "standby served inside the lease";
  Thread.delay 0.6;
  let s = solve_ok addr ~opts:fast_opts small_inst in
  ignore (Cert.assert_ok small_inst s.Proto.starts);
  (match Server.role srv with
  | Proto.Standby -> ()
  | Proto.Primary -> Alcotest.fail "lease expiry must not flip the role");
  Server.note_primary_contact srv ~head:0;
  expect_refusal "fresh primary contact must re-arm the refusal"

let suite =
  [
    Alcotest.test_case "request bodies round-trip" `Quick
      test_request_roundtrips;
    Alcotest.test_case "response bodies round-trip" `Quick
      test_response_roundtrips;
    qtest_solve_roundtrip;
    Alcotest.test_case "malformed bodies rejected typed" `Quick
      test_decode_rejects;
    Alcotest.test_case "frames round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame damage detected" `Quick test_frame_damage;
    Alcotest.test_case "oversized frame keeps stream in sync" `Quick
      test_frame_oversized_stays_in_sync;
    Alcotest.test_case "e2e: solve, certify, cache" `Quick
      test_e2e_solve_and_cache;
    Alcotest.test_case "e2e: delta chain repairs and verifies" `Quick
      test_e2e_delta_repair;
    Alcotest.test_case "e2e: unknown fingerprints and bad deltas are typed"
      `Quick test_e2e_delta_unknown_and_bad;
    Alcotest.test_case "e2e: long delta chain keeps the repair FIFO bounded"
      `Quick test_e2e_delta_fifo_bounded;
    Alcotest.test_case "e2e: ping and stats" `Quick test_e2e_ping_and_stats;
    Alcotest.test_case "e2e: oversize admission shed" `Quick
      test_e2e_too_large;
    Alcotest.test_case "e2e: connection survives damaged frames" `Quick
      test_e2e_damage_survival;
    Alcotest.test_case "e2e: saturation sheds Queue_full" `Slow
      test_e2e_queue_full_shed;
    Alcotest.test_case "e2e: deadline expires in queue" `Slow
      test_e2e_expired_in_queue;
    Alcotest.test_case "e2e: deadlines are isolated" `Slow
      test_e2e_deadline_isolation;
    Alcotest.test_case "e2e: client-requested shutdown" `Quick
      test_e2e_shutdown_request;
    Alcotest.test_case "netfault plans parse and decide deterministically"
      `Quick test_netfault_plan;
    Alcotest.test_case "slow loris: stalled header is cut off" `Slow
      test_slow_loris_header;
    Alcotest.test_case "slow loris: stalled body is cut off" `Slow
      test_slow_loris_body;
    Alcotest.test_case "half-open connection still gets its response" `Quick
      test_half_open_connection;
    Alcotest.test_case "brownout watermark transitions" `Quick
      test_brownout_watermarks;
    Alcotest.test_case "e2e: brownout converts sheds into degraded answers"
      `Slow test_e2e_brownout_conversion;
    Alcotest.test_case "retry schedule is capped and deterministic" `Quick
      test_retry_schedule;
    Alcotest.test_case "supervisor policy: backoff, reset, give-up" `Quick
      test_supervise_policy;
    Alcotest.test_case "connect failures are typed" `Quick
      test_connect_errors_typed;
    Alcotest.test_case "requests to a dead server are typed" `Quick
      test_broken_pipe_typed;
    Alcotest.test_case "verify_solution rejects corrupted answers" `Quick
      test_verify_solution_corrupt;
    Alcotest.test_case "e2e: health probe" `Quick test_e2e_health;
    Alcotest.test_case "e2e: benign fault proxy preserves answers" `Slow
      test_e2e_proxy_benign;
    Alcotest.test_case "e2e: retries recover from a reset-heavy link" `Slow
      test_e2e_proxy_resets_recovered;
    Alcotest.test_case "supervisor policy: boundary cases" `Quick
      test_supervise_boundaries;
    Alcotest.test_case "endpoint syntax parses and rejects" `Quick
      test_addr_of_string;
    Alcotest.test_case "e2e: replicate, kill, promote, serve" `Quick
      test_e2e_replication_promote;
    Alcotest.test_case "e2e: client failover walks the endpoint list" `Quick
      test_e2e_client_failover;
    Alcotest.test_case "e2e: delta re-key discipline" `Quick
      test_e2e_delta_rekey_discipline;
    Alcotest.test_case "e2e: standby lease expiry" `Quick
      test_e2e_standby_lease_expiry;
  ]
