(* The crash-safe persistence layer: codec round-trips per payload
   kind, exhaustive truncation and single-bit corruption (every way a
   snapshot file can be damaged must map to a typed error, never an
   exception or a silent wrong resume), autosave cadence, atomic
   installs, and deterministic kill-resume equivalence for the order
   branch-and-bound, iterated greedy and fuzz-campaign loops. *)

module S = Ivc_grid.Stencil
module Codec = Ivc_persist.Codec
module Snapshot = Ivc_persist.Snapshot
module Autosave = Ivc_persist.Autosave
module Wal = Ivc_persist.Wal
module Scrub = Ivc_persist.Scrub
module Order_bb = Ivc_exact.Order_bb
module Cp = Ivc_exact.Cp
module Optimize = Ivc_exact.Optimize
module It = Ivc.Iterated
module Driver = Ivc_resilient.Driver
module Fuzz = Ivc_check.Fuzz

let inst () = Util.random_inst2 ~seed:41 ~x:6 ~y:5 ~bound:9
let other_inst () = Util.random_inst2 ~seed:42 ~x:6 ~y:5 ~bound:9

let with_temp f =
  let path = Filename.temp_file "ivc-persist-test" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let err_str = function
  | Ok _ -> "Ok"
  | Error e -> Snapshot.error_to_string e

(* ---- codec primitives ----------------------------------------------- *)

let test_codec_roundtrip () =
  let rng = Spatial_data.Rng.create 1312 in
  for _ = 1 to 200 do
    let i = Spatial_data.Rng.int rng 1_000_000 - 500_000 in
    let a = Array.init (Spatial_data.Rng.int rng 20) (fun k -> k * i) in
    let s =
      String.init (Spatial_data.Rng.int rng 40) (fun _ ->
          Char.chr (Spatial_data.Rng.int rng 256))
    in
    let o = if Spatial_data.Rng.int rng 2 = 0 then Some i else None in
    let l = List.init (Spatial_data.Rng.int rng 8) (fun k -> k - i) in
    let f = Float.of_int i /. 97.0 in
    let b = Spatial_data.Rng.int rng 2 = 0 in
    let w = Codec.W.create () in
    Codec.W.int w i;
    Codec.W.i64 w (Int64.of_int (i * 3));
    Codec.W.bool w b;
    Codec.W.float w f;
    Codec.W.string w s;
    Codec.W.int_array w a;
    Codec.W.option w Codec.W.int o;
    Codec.W.list w Codec.W.int l;
    let r = Codec.R.of_string (Codec.W.contents w) in
    Alcotest.(check int) "int" i (Codec.R.int r);
    Alcotest.(check int64) "i64" (Int64.of_int (i * 3)) (Codec.R.i64 r);
    Alcotest.(check bool) "bool" b (Codec.R.bool r);
    Alcotest.(check (float 0.0)) "float" f (Codec.R.float r);
    Alcotest.(check string) "string" s (Codec.R.string r);
    Alcotest.(check (array int)) "int_array" a (Codec.R.int_array r);
    Alcotest.(check (option int)) "option" o (Codec.R.option r Codec.R.int);
    Alcotest.(check (list int)) "list" l (Codec.R.list r Codec.R.int);
    Codec.R.expect_end r
  done

let test_codec_rejects_trailing_bytes () =
  let w = Codec.W.create () in
  Codec.W.int w 7;
  let r = Codec.R.of_string (Codec.W.contents w ^ "x") in
  ignore (Codec.R.int r);
  match Codec.R.expect_end r with
  | () -> Alcotest.fail "trailing garbage accepted"
  | exception Codec.Corrupt _ -> ()

(* ---- snapshot framing ------------------------------------------------ *)

let sample_snapshot () =
  { Snapshot.kind = "order-bb"; payload = "some \x00binary\xff payload" }

let test_snapshot_roundtrip () =
  let rng = Spatial_data.Rng.create 99 in
  for _ = 1 to 100 do
    let bin n =
      String.init (Spatial_data.Rng.int rng n) (fun _ ->
          Char.chr (Spatial_data.Rng.int rng 256))
    in
    let t = { Snapshot.kind = bin 12; payload = bin 200 } in
    match Snapshot.of_string (Snapshot.to_string t) with
    | Ok t' ->
        Alcotest.(check string) "kind" t.Snapshot.kind t'.Snapshot.kind;
        Alcotest.(check string) "payload" t.Snapshot.payload t'.Snapshot.payload
    | Error e -> Alcotest.failf "round-trip failed: %s" (Snapshot.error_to_string e)
  done

(* Cutting the file at every byte boundary must produce a typed error —
   by construction of the test, never an exception. *)
let test_truncation_every_byte () =
  let s = Snapshot.to_string (sample_snapshot ()) in
  for len = 0 to String.length s - 1 do
    match Snapshot.of_string (String.sub s 0 len) with
    | Error
        ( Snapshot.Truncated | Snapshot.Bad_magic
        | Snapshot.Bad_checksum _ | Snapshot.Version_mismatch _ ) ->
        ()
    | other ->
        Alcotest.failf "truncation at byte %d not rejected: %s" len
          (err_str other)
  done

(* Flipping any single bit anywhere in the file must be detected: the
   magic/version/crc fields by their own checks, everything after them
   by the CRC. *)
let test_single_bit_corruption () =
  let s = Snapshot.to_string (sample_snapshot ()) in
  for byte = 0 to String.length s - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string s in
      Bytes.set b byte (Char.chr (Char.code s.[byte] lxor (1 lsl bit)));
      match Snapshot.of_string (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "bit %d of byte %d flipped undetected" bit byte
    done
  done

let test_version_mismatch_is_typed () =
  let s = Snapshot.to_string (sample_snapshot ()) in
  let b = Bytes.of_string s in
  (* version field: little-endian word at offset 8 *)
  Bytes.set b 8 (Char.chr (Snapshot.version + 1));
  match Snapshot.of_string (Bytes.to_string b) with
  | Error (Snapshot.Version_mismatch { expected; got }) ->
      Alcotest.(check int) "expected" Snapshot.version expected;
      Alcotest.(check int) "got" (Snapshot.version + 1) got
  | other -> Alcotest.failf "future version accepted: %s" (err_str other)

(* ---- per-kind payload round-trips ------------------------------------ *)

let snap_of kind payload = { Snapshot.kind; payload }

let test_order_bb_payload_roundtrip () =
  let inst = inst () in
  let n = S.n_vertices inst in
  let starts = Ivc.Heuristics.gll inst in
  let c =
    {
      (Order_bb.checkpoint_of_incumbent inst ~lb:3
         ~best:(Util.maxcolor inst starts)
         ~best_starts:starts)
      with
      Order_bb.nodes = 12345;
      path = [| 0; n - 1; 2 |];
    }
  in
  let snap = snap_of Order_bb.kind (Order_bb.encode_checkpoint c) in
  match
    Result.bind
      (Snapshot.of_string (Snapshot.to_string snap))
      (Order_bb.decode_checkpoint ~inst)
  with
  | Ok c' ->
      Alcotest.(check int) "lb" c.Order_bb.lb c'.Order_bb.lb;
      Alcotest.(check int) "best" c.Order_bb.best c'.Order_bb.best;
      Alcotest.(check int) "nodes" c.Order_bb.nodes c'.Order_bb.nodes;
      Alcotest.(check (array int)) "starts" c.Order_bb.best_starts
        c'.Order_bb.best_starts;
      Alcotest.(check (array int)) "path" c.Order_bb.path c'.Order_bb.path
  | Error e -> Alcotest.failf "decode failed: %s" (Snapshot.error_to_string e)

let test_cp_payload_roundtrip () =
  let inst = inst () in
  let starts = Ivc.Heuristics.gll inst in
  List.iter
    (fun probe ->
      let c =
        {
          Cp.fp = Snapshot.fingerprint inst;
          lo = 4;
          hi = 9;
          best_starts = starts;
          probe;
        }
      in
      let snap = snap_of Cp.kind (Cp.encode_checkpoint c) in
      match
        Result.bind
          (Snapshot.of_string (Snapshot.to_string snap))
          (Cp.decode_checkpoint ~inst)
      with
      | Ok c' ->
          Alcotest.(check int) "lo" c.Cp.lo c'.Cp.lo;
          Alcotest.(check int) "hi" c.Cp.hi c'.Cp.hi;
          Alcotest.(check bool) "probe" true (c'.Cp.probe = c.Cp.probe)
      | Error e ->
          Alcotest.failf "decode failed: %s" (Snapshot.error_to_string e))
    [ None; Some { Cp.k = 6; nodes = 77; path = [| 0; 3; 1; 2 |] } ]

let test_iterated_payload_roundtrip () =
  let inst = inst () in
  let passes = [ It.Reverse; It.Cliques; It.Restart ] in
  let starts = Ivc.Heuristics.gll inst in
  let c =
    {
      It.fp = Snapshot.fingerprint inst;
      passes = Array.of_list (List.map It.pass_tag passes);
      round = 2;
      pass_idx = 1;
      round_before = Util.maxcolor inst starts + 1;
      best = starts;
      cur = starts;
    }
  in
  let snap = snap_of It.kind (It.encode_checkpoint c) in
  match
    Result.bind
      (Snapshot.of_string (Snapshot.to_string snap))
      (It.decode_checkpoint ~inst ~passes)
  with
  | Ok c' ->
      Alcotest.(check int) "round" c.It.round c'.It.round;
      Alcotest.(check int) "pass_idx" c.It.pass_idx c'.It.pass_idx;
      Alcotest.(check (array int)) "best" c.It.best c'.It.best
  | Error e -> Alcotest.failf "decode failed: %s" (Snapshot.error_to_string e)

let test_driver_seed_roundtrip () =
  let inst = inst () in
  let starts = Ivc.Heuristics.gll inst in
  List.iter
    (fun prov ->
      let s =
        {
          Driver.fp = Snapshot.fingerprint inst;
          lb = 5;
          starts;
          prov;
          proven = false;
        }
      in
      let snap = snap_of Driver.driver_kind (Driver.encode_seed s) in
      match
        Result.bind
          (Snapshot.of_string (Snapshot.to_string snap))
          (Driver.decode_resume ~inst)
      with
      | Ok (Driver.Seed s') ->
          Alcotest.(check int) "lb" s.Driver.lb s'.Driver.lb;
          Alcotest.(check (array int)) "starts" s.Driver.starts s'.Driver.starts;
          Alcotest.(check string) "provenance"
            (Driver.provenance_to_string s.Driver.prov)
            (Driver.provenance_to_string s'.Driver.prov)
      | Ok _ -> Alcotest.fail "driver snapshot decoded to a non-seed resume"
      | Error e ->
          Alcotest.failf "decode failed: %s" (Snapshot.error_to_string e))
    [
      Driver.Fallback;
      Driver.Heuristic "BDP";
      Driver.Resumed (Driver.Heuristic "BDP+IGR");
      Driver.Resumed (Driver.Resumed Driver.Exact);
    ]

let test_fuzz_payload_roundtrip () =
  let c =
    {
      Fuzz.seed = 1913;
      next_index = 250;
      instances = 250;
      oracle_runs = 1100;
      n_failures = 2;
      elapsed_base = 3.5;
      per_oracle = [ ("cert", 250, 0); ("kernel-diff", 250, 2) ];
    }
  in
  let snap = snap_of Fuzz.kind (Fuzz.encode_checkpoint c) in
  (match
     Result.bind
       (Snapshot.of_string (Snapshot.to_string snap))
       (Fuzz.decode_checkpoint ~seed:1913)
   with
  | Ok c' ->
      Alcotest.(check int) "next_index" c.Fuzz.next_index c'.Fuzz.next_index;
      Alcotest.(check int) "oracle_runs" c.Fuzz.oracle_runs c'.Fuzz.oracle_runs;
      Alcotest.(check bool) "per_oracle" true
        (c'.Fuzz.per_oracle = c.Fuzz.per_oracle)
  | Error e -> Alcotest.failf "decode failed: %s" (Snapshot.error_to_string e));
  (* the same snapshot against a different campaign seed fails closed *)
  match
    Result.bind
      (Snapshot.of_string (Snapshot.to_string snap))
      (Fuzz.decode_checkpoint ~seed:1914)
  with
  | Error Snapshot.Instance_mismatch -> ()
  | other -> Alcotest.failf "wrong-seed cursor accepted: %s" (err_str other)

(* ---- fail-closed dispatch -------------------------------------------- *)

let test_wrong_kind_and_instance () =
  let inst = inst () in
  let starts = Ivc.Heuristics.gll inst in
  let bb =
    Order_bb.checkpoint_of_incumbent inst ~lb:3
      ~best:(Util.maxcolor inst starts) ~best_starts:starts
  in
  let bb_snap = snap_of Order_bb.kind (Order_bb.encode_checkpoint bb) in
  (* wrong solver: an order-bb snapshot handed to the CP decoder *)
  (match Cp.decode_checkpoint ~inst bb_snap with
  | Error (Snapshot.Wrong_kind { expected; got }) ->
      Alcotest.(check string) "expected" Cp.kind expected;
      Alcotest.(check string) "got" Order_bb.kind got
  | other -> Alcotest.failf "wrong kind accepted: %s" (err_str other));
  (* wrong instance: same dims, different weights *)
  (match Order_bb.decode_checkpoint ~inst:(other_inst ()) bb_snap with
  | Error Snapshot.Instance_mismatch -> ()
  | other -> Alcotest.failf "wrong instance accepted: %s" (err_str other));
  (* out-of-range path cursor *)
  let bad = { bb with Order_bb.path = [| S.n_vertices inst + 3 |] } in
  (match
     Order_bb.decode_checkpoint ~inst
       (snap_of Order_bb.kind (Order_bb.encode_checkpoint bad))
   with
  | Error (Snapshot.Bad_payload _) -> ()
  | other -> Alcotest.failf "bad path accepted: %s" (err_str other));
  (* an unknown kind through the front-end dispatchers *)
  (match Optimize.plan_resume ~inst (snap_of "fuzz" "x") with
  | Error (Snapshot.Wrong_kind _) -> ()
  | other -> Alcotest.failf "fuzz kind accepted by exact: %s" (err_str other));
  match Driver.decode_resume ~inst (snap_of "nonsense" "x") with
  | Error (Snapshot.Wrong_kind _) -> ()
  | other -> Alcotest.failf "nonsense kind accepted: %s" (err_str other)

let test_plan_resume_dispatch () =
  let inst = inst () in
  let starts = Ivc.Heuristics.gll inst in
  let bb =
    Order_bb.checkpoint_of_incumbent inst ~lb:3
      ~best:(Util.maxcolor inst starts) ~best_starts:starts
  in
  (match
     Optimize.plan_resume ~inst
       (snap_of Order_bb.kind (Order_bb.encode_checkpoint bb))
   with
  | Ok (Optimize.Order_bb_plan _) -> ()
  | other -> Alcotest.failf "order-bb did not dispatch: %s" (err_str other));
  let cp =
    { Cp.fp = Snapshot.fingerprint inst; lo = 4; hi = 9;
      best_starts = starts; probe = None }
  in
  match
    Optimize.plan_resume ~inst (snap_of Cp.kind (Cp.encode_checkpoint cp))
  with
  | Ok (Optimize.Cp_plan _) -> ()
  | other -> Alcotest.failf "cp did not dispatch: %s" (err_str other)

(* ---- autosave + atomic install --------------------------------------- *)

let test_autosave_cadence () =
  with_temp @@ fun path ->
  (* cadence 0: every tick saves, and the file always holds the newest
     complete payload *)
  let a = Autosave.make ~every_s:0.0 path in
  for i = 1 to 5 do
    Autosave.tick a ~kind:"test" (fun () -> Printf.sprintf "payload-%d" i)
  done;
  Alcotest.(check int) "every tick saved" 5 (Autosave.saves a);
  (match Snapshot.load path with
  | Ok t ->
      Alcotest.(check string) "kind" "test" t.Snapshot.kind;
      Alcotest.(check string) "newest payload" "payload-5" t.Snapshot.payload
  | Error e -> Alcotest.failf "load failed: %s" (Snapshot.error_to_string e));
  (* huge cadence: no tick is due, and the payload thunk never runs *)
  let b = Autosave.make ~every_s:1e9 path in
  for _ = 1 to 5 do
    Autosave.tick b ~kind:"test" (fun () -> Alcotest.fail "thunk ran off-cadence")
  done;
  Alcotest.(check int) "off-cadence ticks are free" 0 (Autosave.saves b)

let test_save_atomic_overwrites () =
  with_temp @@ fun path ->
  Spatial_data.Io.save_atomic path "first";
  Spatial_data.Io.save_atomic path "second";
  Alcotest.(check string) "newest content" "second"
    (Spatial_data.Io.load path);
  Alcotest.(check bool) "no temp left" false (Sys.file_exists (path ^ ".tmp"))

let test_load_missing_is_unreadable () =
  match Snapshot.load "/nonexistent/ivc-persist-test.snap" with
  | Error (Snapshot.Unreadable _) -> ()
  | other -> Alcotest.failf "missing file: %s" (err_str other)

(* ---- kill-resume equivalence ----------------------------------------- *)

exception Killed

(* Kill the solver (by raising from the autosave hook, i.e. exactly at
   a checkpoint boundary, the snapshot already installed) [kills] times
   at increasing save ordinals, resuming each time, and require the
   final status to be identical to an uninterrupted run with the same
   cumulative budget. *)
let test_kill_resume_order_bb () =
  let inst = Util.random_inst2 ~seed:4242 ~x:8 ~y:8 ~bound:19 in
  let budget = 4_000 in
  let reference = Order_bb.solve ~node_budget:budget inst in
  with_temp @@ fun path ->
  let resumed = ref 0 in
  let rec attempt resume =
    let kill_at = !resumed + 2 in
    let a =
      Autosave.make ~every_s:0.0
        ~on_save:(fun s -> if s >= kill_at && !resumed < 3 then raise Killed)
        path
    in
    match Order_bb.solve ~node_budget:budget ~autosave:a ?resume inst with
    | status -> status
    | exception Killed -> (
        incr resumed;
        match
          Result.bind (Snapshot.load path) (Order_bb.decode_checkpoint ~inst)
        with
        | Ok c -> attempt (Some c)
        | Error e ->
            Alcotest.failf "reload after kill %d failed: %s" !resumed
              (Snapshot.error_to_string e))
  in
  let final = attempt None in
  Alcotest.(check bool) "was killed at least once" true (!resumed >= 1);
  Alcotest.(check bool) "same optimality" (Order_bb.is_optimal reference)
    (Order_bb.is_optimal final);
  Alcotest.(check int) "same lower bound"
    (Order_bb.lower_bound_of reference)
    (Order_bb.lower_bound_of final);
  Alcotest.(check int) "same upper bound"
    (Order_bb.upper_bound_of reference)
    (Order_bb.upper_bound_of final);
  Util.check_valid inst (Order_bb.starts_of final)

let test_kill_resume_iterated () =
  let inst = Util.random_inst2 ~seed:4243 ~x:9 ~y:9 ~bound:15 in
  let stacked, _ = Ivc.Special.color_clique ~w:(inst : S.t).w in
  let passes = [ It.Reverse; It.Cliques; It.Restart ] in
  let reference = It.run inst stacked ~passes in
  with_temp @@ fun path ->
  let killed = ref false in
  let final =
    let a =
      Autosave.make ~every_s:0.0
        ~on_save:(fun s -> if s = 2 then raise Killed)
        path
    in
    match It.run inst stacked ~passes ~autosave:a with
    | r -> r
    | exception Killed -> (
        killed := true;
        match
          Result.bind (Snapshot.load path)
            (It.decode_checkpoint ~inst ~passes)
        with
        | Ok c -> It.run inst stacked ~passes ~resume:c
        | Error e ->
            Alcotest.failf "reload failed: %s" (Snapshot.error_to_string e))
  in
  Alcotest.(check bool) "was killed" true !killed;
  Util.check_valid inst final;
  Alcotest.(check int) "same maxcolor after resume"
    (Util.maxcolor inst reference)
    (Util.maxcolor inst final)

let test_kill_resume_fuzz () =
  let oracles = [ Ivc_check.Oracles.cert ] in
  let run_args = (123, 60) in
  let seed, max_instances = run_args in
  let reference =
    Fuzz.run ~seed ~budget_s:60.0 ~max_instances ~oracles ()
  in
  with_temp @@ fun path ->
  let killed = ref false in
  let report =
    let a =
      Autosave.make ~every_s:0.0
        ~on_save:(fun s -> if s = 20 then raise Killed)
        path
    in
    match Fuzz.run ~seed ~budget_s:60.0 ~max_instances ~oracles ~autosave:a ()
    with
    | r -> r
    | exception Killed -> (
        killed := true;
        match
          Result.bind (Snapshot.load path) (Fuzz.decode_checkpoint ~seed)
        with
        | Ok c ->
            Fuzz.run ~seed ~budget_s:60.0 ~max_instances ~oracles ~resume:c ()
        | Error e ->
            Alcotest.failf "reload failed: %s" (Snapshot.error_to_string e))
  in
  Alcotest.(check bool) "was killed" true !killed;
  Alcotest.(check bool) "resumed flag" true report.Fuzz.resumed;
  Alcotest.(check int) "cumulative instances" reference.Fuzz.instances
    report.Fuzz.instances;
  Alcotest.(check int) "cumulative oracle runs" reference.Fuzz.oracle_runs
    report.Fuzz.oracle_runs;
  Alcotest.(check bool) "per-oracle counters" true
    (reference.Fuzz.per_oracle = report.Fuzz.per_oracle)

(* The crash-resume oracle itself (fault-plan-driven kills inside the
   fuzz harness) on a few instances of the deterministic stream. *)
let test_crash_resume_oracle () =
  for index = 0 to 5 do
    let inst = Ivc_check.Gen.instance ~seed:31 ~index in
    ignore (Util.oracle_holds Ivc_check.Oracles.crash_resume inst)
  done

(* ---- write-ahead log -------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "ivc-wal-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) @@ fun () ->
  f dir

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_whole path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc s

let payload i = Printf.sprintf "record-%03d-%s" i (String.make 200 'x')

let wal_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun n -> Wal.is_segment n || Wal.is_active n)
  |> List.sort compare

let collect () =
  let seen = ref [] in
  let f seq p = seen := (seq, p) :: !seen in
  (f, fun () -> List.rev !seen)

(* Fill a log past several rotations, replay it back in order, and
   reopen it for appending: sequence numbers must continue where the
   previous writer stopped, across the seal/rotate boundary. *)
let test_wal_append_rotate_reopen () =
  with_temp_dir @@ fun dir ->
  let f, _ = collect () in
  let w, r0 = Wal.open_log ~segment_bytes:4096 ~fsync:false ~dir f in
  Alcotest.(check int) "fresh log is empty" 0 r0.Wal.records;
  let n = 60 in
  for i = 0 to n - 1 do
    Alcotest.(check int) "append returns the sequence" i
      (Wal.append w (payload i))
  done;
  Alcotest.(check int) "head counts appends" n (Wal.head w);
  Wal.close w;
  Alcotest.(check bool) "appends crossed a rotation" true
    (List.length (wal_files dir) > 1);
  let f, got = collect () in
  let r = Wal.replay ~dir f in
  Alcotest.(check bool) "clean log is not truncated" false r.Wal.truncated;
  Alcotest.(check int) "replay sees every record" n r.Wal.records;
  List.iteri
    (fun i (seq, p) ->
      Alcotest.(check int) "replay in append order" i seq;
      Alcotest.(check string) "payload intact" (payload i) p)
    (got ());
  (* reopen: the writer resumes after the last valid record *)
  let f, _ = collect () in
  let w, r = Wal.open_log ~segment_bytes:4096 ~fsync:false ~dir f in
  Alcotest.(check int) "reopen replays everything" n r.Wal.records;
  Alcotest.(check int) "sequence continues" n (Wal.append w "tail");
  Wal.close w

(* Cut the log mid-frame: replay must fail closed on the valid prefix
   (never raise, never skip a hole), and open_log must truncate the
   damage so the next writer appends onto a clean prefix. *)
let test_wal_truncation_fail_closed () =
  with_temp_dir @@ fun dir ->
  let f, _ = collect () in
  let w, _ = Wal.open_log ~segment_bytes:4096 ~fsync:false ~dir f in
  let n = 10 in
  for i = 0 to n - 1 do
    ignore (Wal.append w (payload i))
  done;
  Wal.close w;
  let last = Filename.concat dir (List.hd (List.rev (wal_files dir))) in
  let s = read_whole last in
  write_whole last (String.sub s 0 (String.length s - 5));
  let f, got = collect () in
  let r = Wal.replay ~dir f in
  Alcotest.(check bool) "truncation detected" true r.Wal.truncated;
  Alcotest.(check int) "one record lost" (n - 1) r.Wal.records;
  Alcotest.(check bool) "dropped bytes accounted" true (r.Wal.dropped_bytes > 0);
  List.iteri
    (fun i (seq, p) ->
      Alcotest.(check int) "prefix in order" i seq;
      Alcotest.(check string) "prefix payloads intact" (payload i) p)
    (got ());
  (* open_log repairs to the prefix; a fresh replay is clean again *)
  let f, _ = collect () in
  let w, r = Wal.open_log ~segment_bytes:4096 ~fsync:false ~dir f in
  Alcotest.(check int) "repair keeps the prefix" (n - 1) r.Wal.records;
  Alcotest.(check int) "writer resumes at the cut" (n - 1)
    (Wal.append w "replacement");
  Wal.close w;
  let f, _ = collect () in
  let r = Wal.replay ~dir f in
  Alcotest.(check bool) "repaired log replays clean" false r.Wal.truncated;
  Alcotest.(check int) "repaired log has the prefix plus the new tail" n
    r.Wal.records

(* A single flipped bit in a sealed segment must be caught by the CRC:
   verify_file reports the damage, replay stops at the frame before
   it, and records from any earlier segment survive untouched. *)
let test_wal_bitflip_fail_closed () =
  with_temp_dir @@ fun dir ->
  let f, _ = collect () in
  let w, _ = Wal.open_log ~segment_bytes:4096 ~fsync:false ~dir f in
  let n = 60 in
  for i = 0 to n - 1 do
    ignore (Wal.append w (payload i))
  done;
  Wal.close w;
  let sealed =
    match List.filter Wal.is_segment (wal_files dir) with
    | s :: _ -> Filename.concat dir s
    | [] -> Alcotest.fail "no sealed segment to damage"
  in
  (match Wal.verify_file sealed with
  | `Ok records -> Alcotest.(check bool) "sealed has records" true (records > 0)
  | `Damaged _ -> Alcotest.fail "undamaged segment reported damaged");
  let s = read_whole sealed in
  let off = 8 + ((String.length s - 8) / 2) in
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code s.[off] lxor 0x10));
  write_whole sealed (Bytes.to_string b);
  (match Wal.verify_file sealed with
  | `Damaged (valid_records, valid_bytes) ->
      Alcotest.(check bool) "damage located at a frame boundary" true
        (valid_records >= 0 && valid_bytes >= 8)
  | `Ok _ -> Alcotest.fail "bit flip escaped the CRC");
  let f, got = collect () in
  let r = Wal.replay ~dir f in
  Alcotest.(check bool) "replay fails closed on the flip" true r.Wal.truncated;
  Alcotest.(check bool) "replay kept a strict prefix" true (r.Wal.records < n);
  List.iteri
    (fun i (seq, p) ->
      Alcotest.(check int) "no holes before the damage" i seq;
      Alcotest.(check string) "prefix payloads intact" (payload i) p)
    (got ())

(* The scrub pass over a mixed directory: damaged sealed segments are
   quarantined (and their valid prefix re-installed), live [.open]
   segments and unknown files are skipped, and a second pass finds
   nothing left to do. *)
let test_scrub_quarantines_wal_damage () =
  with_temp_dir @@ fun dir ->
  let f, _ = collect () in
  let w, _ = Wal.open_log ~segment_bytes:4096 ~fsync:false ~dir f in
  for i = 0 to 59 do
    ignore (Wal.append w (payload i))
  done;
  Wal.close w;
  write_whole (Filename.concat dir "notes.txt") "not ours";
  (* resurrect an [.open] basename: scrub must not touch a live
     writer's active segment even if it is damaged *)
  let active = Filename.concat dir "wal-00000000000000ff.open" in
  write_whole active "garbage that is not a WAL";
  let sealed =
    match List.filter Wal.is_segment (wal_files dir) with
    | s :: _ -> Filename.concat dir s
    | [] -> Alcotest.fail "no sealed segment to damage"
  in
  let s = read_whole sealed in
  let off = 8 + ((String.length s - 8) / 3) in
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code s.[off] lxor 0x40));
  write_whole sealed (Bytes.to_string b);
  let rep = Scrub.run ~dirs:[ dir ] () in
  Alcotest.(check int) "damaged segment quarantined" 1 rep.Scrub.quarantined;
  Alcotest.(check bool) "skipped the active segment and the stray file" true
    (rep.Scrub.skipped >= 2);
  let q = Filename.concat dir "quarantine" in
  Alcotest.(check bool) "evidence kept in quarantine/" true
    (Sys.file_exists q && Array.length (Sys.readdir q) = 1);
  (if rep.Scrub.repaired > 0 then
     (* the re-installed prefix must verify clean *)
     match Wal.verify_file sealed with
     | `Ok _ -> ()
     | `Damaged _ -> Alcotest.fail "re-installed prefix still damaged");
  (* drop the fake active segment (its garbage would — correctly —
     trip a fail-closed replay); what scrub left must replay clean *)
  Sys.remove active;
  let f, _ = collect () in
  let r = Wal.replay ~dir f in
  Alcotest.(check bool) "post-scrub replay is clean" false r.Wal.truncated;
  let rep2 = Scrub.run ~dirs:[ dir ] () in
  Alcotest.(check int) "second pass finds nothing" 0 rep2.Scrub.quarantined;
  Alcotest.(check int) "second pass repairs nothing" 0 rep2.Scrub.repaired

let suite =
  [
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec trailing bytes" `Quick
      test_codec_rejects_trailing_bytes;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "truncation at every byte" `Quick
      test_truncation_every_byte;
    Alcotest.test_case "single-bit corruption" `Quick
      test_single_bit_corruption;
    Alcotest.test_case "version mismatch" `Quick test_version_mismatch_is_typed;
    Alcotest.test_case "order-bb payload round-trip" `Quick
      test_order_bb_payload_roundtrip;
    Alcotest.test_case "cp payload round-trip" `Quick test_cp_payload_roundtrip;
    Alcotest.test_case "iterated payload round-trip" `Quick
      test_iterated_payload_roundtrip;
    Alcotest.test_case "driver seed round-trip" `Quick
      test_driver_seed_roundtrip;
    Alcotest.test_case "fuzz cursor round-trip" `Quick
      test_fuzz_payload_roundtrip;
    Alcotest.test_case "wrong kind/instance fail closed" `Quick
      test_wrong_kind_and_instance;
    Alcotest.test_case "plan_resume dispatch" `Quick test_plan_resume_dispatch;
    Alcotest.test_case "autosave cadence" `Quick test_autosave_cadence;
    Alcotest.test_case "save_atomic overwrites" `Quick
      test_save_atomic_overwrites;
    Alcotest.test_case "missing file is Unreadable" `Quick
      test_load_missing_is_unreadable;
    Alcotest.test_case "kill-resume: order-bb" `Quick test_kill_resume_order_bb;
    Alcotest.test_case "kill-resume: iterated" `Quick test_kill_resume_iterated;
    Alcotest.test_case "kill-resume: fuzz campaign" `Quick
      test_kill_resume_fuzz;
    Alcotest.test_case "crash-resume oracle" `Slow test_crash_resume_oracle;
    Alcotest.test_case "wal: append, rotate, reopen" `Quick
      test_wal_append_rotate_reopen;
    Alcotest.test_case "wal: truncation fails closed" `Quick
      test_wal_truncation_fail_closed;
    Alcotest.test_case "wal: bit flip fails closed" `Quick
      test_wal_bitflip_fail_closed;
    Alcotest.test_case "scrub: quarantine is idempotent" `Quick
      test_scrub_quarantines_wal_damage;
  ]
