module S = Ivc_grid.Stencil
module Svg = Ivc.Svg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let inst = Util.random_inst2 ~seed:111 ~x:4 ~y:5 ~bound:9

let test_heatmap () =
  let svg = Svg.heatmap inst in
  Alcotest.(check bool) "well-formed" true (Svg.looks_like_svg svg);
  (* one rect per cell *)
  let rects = ref 0 in
  String.iteri
    (fun i c -> if c = '<' && i + 5 < String.length svg && String.sub svg i 5 = "<rect" then incr rects)
    svg;
  Alcotest.(check int) "one rect per cell" 20 !rects

let test_gantt () =
  let starts = Ivc.Bipartite_decomp.bdp inst in
  let svg = Svg.gantt inst starts in
  Alcotest.(check bool) "well-formed" true (Svg.looks_like_svg svg);
  Alcotest.(check bool) "has tooltips" true (contains svg "<title>")

let test_gantt_validates () =
  Alcotest.check_raises "starts length" (Invalid_argument "Svg.gantt: starts length")
    (fun () -> ignore (Svg.gantt inst [| 0 |]))

let test_rejects_3d () =
  let i3 = Util.random_inst3 ~seed:112 ~x:2 ~y:2 ~z:2 ~bound:3 in
  Alcotest.check_raises "3d heatmap" (Invalid_argument "Svg: 2D instances only")
    (fun () -> ignore (Svg.heatmap i3))

let test_looks_like_svg () =
  Alcotest.(check bool) "rejects garbage" false (Svg.looks_like_svg "hello");
  Alcotest.(check bool) "rejects empty" false (Svg.looks_like_svg "")

let suite =
  [
    Alcotest.test_case "heatmap" `Quick test_heatmap;
    Alcotest.test_case "gantt" `Quick test_gantt;
    Alcotest.test_case "gantt validates" `Quick test_gantt_validates;
    Alcotest.test_case "rejects 3D" `Quick test_rejects_3d;
    Alcotest.test_case "looks_like_svg" `Quick test_looks_like_svg;
  ]
