module Rng = Spatial_data.Rng
module P = Spatial_data.Points
module D = Spatial_data.Datasets
module Pr = Spatial_data.Project
module G = Spatial_data.Gridding
module Cat = Spatial_data.Catalog

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 8 in
  Alcotest.(check bool) "different seeds differ" true (Rng.next a <> Rng.next c)

let test_rng_ranges () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "int range" true (v >= 0 && v < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0);
    let g = Rng.range r 2.0 5.0 in
    Alcotest.(check bool) "range" true (g >= 2.0 && g < 5.0)
  done

let test_rng_distributions () =
  let r = Rng.create 5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.gaussian r
  done;
  Alcotest.(check bool) "gaussian mean near 0" true
    (Float.abs (!sum /. Float.of_int n) < 0.05);
  let counts = Array.make 3 0 in
  for _ = 1 to n do
    let i = Rng.categorical r [| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "categorical favors heavy" true
    (counts.(1) > counts.(0) && counts.(1) > counts.(2));
  let e = Rng.exponential r ~rate:2.0 in
  Alcotest.(check bool) "exponential positive" true (e >= 0.0)

let test_points_bbox () =
  let c =
    P.make "t" [| { P.x = 1.0; y = 5.0; t = 0.0 }; { P.x = 3.0; y = 2.0; t = 7.0 } |]
  in
  Alcotest.(check (float 1e-9)) "x0" 1.0 c.P.x0;
  Alcotest.(check (float 1e-9)) "x1" 3.0 c.P.x1;
  Alcotest.(check (float 1e-9)) "y0" 2.0 c.P.y0;
  Alcotest.(check (float 1e-9)) "t1" 7.0 c.P.t1;
  Alcotest.(check int) "size" 2 (P.size c);
  Alcotest.(check (float 1e-9)) "extent" 3.0 (P.extent c)

let test_points_degenerate () =
  let c = P.make "t" [| { P.x = 1.0; y = 1.0; t = 1.0 } |] in
  Alcotest.(check bool) "widened" true (c.P.x1 > c.P.x0 && c.P.t1 > c.P.t0)

let test_datasets_deterministic () =
  let a = D.dengue ~scale:0.05 () and b = D.dengue ~scale:0.05 () in
  Alcotest.(check int) "same size" (P.size a) (P.size b);
  Alcotest.(check bool) "same points" true (a.P.points = b.P.points)

let test_dataset_characters () =
  let scale = 0.1 in
  let dengue = D.dengue ~scale () and flu = D.flu_animal ~scale () in
  let grid c = G.grid2 c Pr.XY ~x:16 ~y:16 in
  (* FluAnimal is the sparse one (the paper discusses this) *)
  Alcotest.(check bool) "flu sparser than dengue" true
    (G.sparsity (grid flu) > G.sparsity (grid dengue));
  (* names as in the paper *)
  Alcotest.(check (list string)) "names"
    [ "Dengue"; "FluAnimal"; "Pollen"; "PollenUS" ]
    (List.map (fun c -> c.P.name) (D.all ~scale ()));
  (* PollenUS is a restriction of Pollen *)
  let pollen = D.pollen ~scale () and pus = D.pollen_us ~scale () in
  Alcotest.(check bool) "restriction is smaller" true (P.size pus < P.size pollen)

let test_projections () =
  let p = { P.x = 1.0; y = 2.0; t = 3.0 } in
  Alcotest.(check (pair (float 0.) (float 0.))) "xy" (1.0, 2.0) (Pr.coords Pr.XY p);
  Alcotest.(check (pair (float 0.) (float 0.))) "xt" (1.0, 3.0) (Pr.coords Pr.XT p);
  Alcotest.(check (pair (float 0.) (float 0.))) "yt" (2.0, 3.0) (Pr.coords Pr.YT p);
  Alcotest.(check (list string)) "plane names" [ "xy"; "xt"; "yt" ]
    (List.map Pr.plane_name Pr.all_planes)

let test_cell_of () =
  Alcotest.(check int) "low edge" 0 (G.cell_of ~lo:0.0 ~hi:10.0 ~cells:5 0.0);
  Alcotest.(check int) "interior" 2 (G.cell_of ~lo:0.0 ~hi:10.0 ~cells:5 4.5);
  Alcotest.(check int) "high edge clamps" 4 (G.cell_of ~lo:0.0 ~hi:10.0 ~cells:5 10.0);
  Alcotest.(check int) "above clamps" 4 (G.cell_of ~lo:0.0 ~hi:10.0 ~cells:5 99.0);
  Alcotest.(check int) "below clamps" 0 (G.cell_of ~lo:0.0 ~hi:10.0 ~cells:5 (-1.0))

let test_gridding_conserves_mass () =
  let cloud = D.dengue ~scale:0.05 () in
  List.iter
    (fun plane ->
      let inst = G.grid2 cloud plane ~x:8 ~y:8 in
      Alcotest.(check int)
        ("2D mass " ^ Pr.plane_name plane)
        (P.size cloud)
        (Ivc_grid.Stencil.total_weight inst))
    Pr.all_planes;
  let inst3 = G.grid3 cloud ~x:4 ~y:4 ~z:4 in
  Alcotest.(check int) "3D mass" (P.size cloud) (Ivc_grid.Stencil.total_weight inst3)

let test_allowed_dims () =
  Alcotest.(check (list int)) "powers plus max" [ 2; 4; 8; 16; 25 ]
    (Cat.allowed_dims ~size:100.0 ~bw:2.0);
  Alcotest.(check (list int)) "exact power" [ 2; 4; 8; 16 ]
    (Cat.allowed_dims ~size:64.0 ~bw:2.0);
  Alcotest.(check (list int)) "tiny domain" [ 2 ]
    (Cat.allowed_dims ~size:1.0 ~bw:10.0)

let test_catalog () =
  let e2 = Cat.entries_2d ~scale:0.02 () in
  let e3 = Cat.entries_3d ~scale:0.02 () in
  Alcotest.(check bool) "hundreds of 2D instances" true (List.length e2 > 300);
  Alcotest.(check bool) "hundreds of 3D instances" true (List.length e3 > 300);
  (* every entry respects the problem statement X,Y(,Z) >= 2 *)
  List.iter
    (fun e ->
      match (e.Cat.inst : Ivc_grid.Stencil.t).Ivc_grid.Stencil.dims with
      | Ivc_grid.Stencil.D2 (x, y) ->
          Alcotest.(check bool) "2D dims >= 2" true (x >= 2 && y >= 2)
      | Ivc_grid.Stencil.D3 (x, y, z) ->
          Alcotest.(check bool) "3D dims >= 2" true (x >= 2 && y >= 2 && z >= 2))
    (e2 @ e3);
  (* subsampling *)
  let sub = Cat.entries_2d ~scale:0.02 ~subsample:10 () in
  Alcotest.(check bool) "subsample shrinks" true
    (List.length sub <= (List.length e2 / 10) + 1);
  (* describe produces something useful *)
  match e2 with
  | e :: _ -> Alcotest.(check bool) "describe" true (String.length (Cat.describe e) > 10)
  | [] -> Alcotest.fail "empty catalog"

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng distributions" `Quick test_rng_distributions;
    Alcotest.test_case "points bbox" `Quick test_points_bbox;
    Alcotest.test_case "degenerate cloud widened" `Quick test_points_degenerate;
    Alcotest.test_case "datasets deterministic" `Quick test_datasets_deterministic;
    Alcotest.test_case "dataset characters" `Quick test_dataset_characters;
    Alcotest.test_case "projections" `Quick test_projections;
    Alcotest.test_case "cell_of" `Quick test_cell_of;
    Alcotest.test_case "gridding conserves mass" `Quick test_gridding_conserves_mass;
    Alcotest.test_case "allowed dims" `Quick test_allowed_dims;
    Alcotest.test_case "catalog" `Quick test_catalog;
  ]
