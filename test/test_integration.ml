(* Cross-module integration tests: the pipelines the bench harness and
   a downstream user would run, exercised end to end at small scale. *)

module S = Ivc_grid.Stencil

let test_catalog_to_profile_pipeline () =
  (* dataset -> catalog -> all algorithms -> performance profile *)
  let entries = Spatial_data.Catalog.entries_2d ~scale:0.02 ~subsample:40 () in
  Alcotest.(check bool) "some entries" true (List.length entries >= 5);
  let rows =
    entries
    |> List.map (fun (e : Spatial_data.Catalog.entry) ->
           Ivc.Algo.run_all e.Spatial_data.Catalog.inst
           |> List.map (fun (_, _, mc) -> max 1 mc)
           |> Array.of_list)
    |> Array.of_list
  in
  let profiles =
    Perfprof.Profile.compute
      ~algorithms:(Array.of_list Ivc.Algo.names)
      rows
  in
  Alcotest.(check int) "one profile per algorithm" 7 (List.length profiles);
  List.iter
    (fun p ->
      Alcotest.(check bool) "profile reaches 1 eventually" true
        (Perfprof.Profile.proportion_at p 1e9 = 1.0))
    profiles

let test_windowed_odd_cycle_bound_sound () =
  (* windowed bound <= exact optimum, and catches the Fig-3 instance's
     odd-cycle value *)
  let w = [| 0; 4; 0; 0; 3; 7; 7; 9; 7; 1; 0; 1; 5; 3; 8; 5 |] in
  let inst = S.make2 ~x:4 ~y:4 w in
  let windowed = Ivc.Bounds.windowed_odd_cycle_lb inst in
  let full = Ivc.Bounds.odd_cycle_lb ~max_len:11 inst in
  Alcotest.(check bool) "windowed <= full enumeration" true (windowed <= full);
  Alcotest.(check bool) "windowed at least the pair bound here" true
    (windowed >= Ivc.Bounds.pair_lb inst);
  match Ivc_exact.Cp.optimize inst with
  | Some (opt, _) -> Alcotest.(check bool) "sound" true (windowed <= opt)
  | None -> Alcotest.fail "budget"

let test_windowed_bound_on_3d_is_zero () =
  let inst = Util.random_inst3 ~seed:121 ~x:2 ~y:2 ~z:2 ~bound:5 in
  Alcotest.(check int) "3D returns 0" 0 (Ivc.Bounds.windowed_odd_cycle_lb inst)

let prop_windowed_bound_sound =
  Util.qtest ~count:30 "windowed odd-cycle bound below optimum" Util.gen_inst2
    (fun inst ->
      match Ivc_exact.Cp.optimize ~budget:1_000_000 inst with
      | None -> QCheck2.assume_fail ()
      | Some (opt, _) ->
          Ivc.Bounds.windowed_odd_cycle_lb inst <= opt
          && Ivc.Bounds.windowed_odd_cycle_lb ~window:4 inst <= opt)

let test_sim_policies_all_valid () =
  let inst = Util.random_inst2 ~seed:122 ~x:6 ~y:6 ~bound:9 in
  let starts = Ivc.Heuristics.glf inst in
  let dag =
    Taskpar.Dag.of_coloring inst ~starts ~cost:(fun v ->
        1.0 +. Float.of_int (S.weight inst v))
  in
  let cp = Taskpar.Dag.critical_path dag in
  List.iter
    (fun policy ->
      let sch = Taskpar.Sim.run ~policy dag ~workers:4 in
      Alcotest.(check bool) "makespan at least the critical path" true
        (sch.Taskpar.Sim.makespan >= cp -. 1e-9);
      Alcotest.(check bool) "makespan at most serial time" true
        (sch.Taskpar.Sim.makespan <= Taskpar.Dag.total_work dag +. 1e-9))
    [ Taskpar.Sim.Color_order; Taskpar.Sim.Lpt; Taskpar.Sim.Fifo ]

let test_gadget_io_roundtrip () =
  (* reduction gadget survives the instance text format *)
  let sat = Nae3sat.Instance.make 3 [ (1, 2, 3) ] in
  let gadget = Nae3sat.Reduction.build sat in
  let back = Spatial_data.Io.instance_of_string
      (Spatial_data.Io.instance_to_string gadget)
  in
  Alcotest.(check string) "describe" (S.describe gadget) (S.describe back);
  match Ivc_exact.Cp.decide back ~k:14 with
  | Ivc_exact.Cp.Colorable _ -> ()
  | _ -> Alcotest.fail "roundtripped gadget must stay 14-colorable"

let test_svg_of_dataset_coloring () =
  let cloud = Spatial_data.Datasets.pollen_us ~scale:0.02 () in
  let inst = Spatial_data.Gridding.grid2 cloud Spatial_data.Project.XY ~x:12 ~y:12 in
  let starts = Ivc.Iterated.best_effort ~max_rounds:2 inst in
  Util.check_valid inst starts;
  Alcotest.(check bool) "heatmap svg" true
    (Ivc.Svg.looks_like_svg (Ivc.Svg.heatmap inst));
  Alcotest.(check bool) "gantt svg" true
    (Ivc.Svg.looks_like_svg (Ivc.Svg.gantt inst starts))

let test_parallel_coloring_feeds_scheduler () =
  (* parallel coloring -> DAG -> pool execution, full loop *)
  let inst = Util.random_inst2 ~seed:123 ~x:8 ~y:8 ~bound:9 in
  let starts, _ = Ivc_parcolor.Parallel_greedy.color ~workers:2 inst in
  let dag =
    Taskpar.Dag.of_coloring inst ~starts ~cost:(fun _ -> 1.0)
  in
  let hits = Array.make (S.n_vertices inst) 0 in
  let _ = Taskpar.Pool.run dag ~workers:2 ~work:(fun v -> hits.(v) <- hits.(v) + 1) in
  Alcotest.(check bool) "every task ran once" true
    (Array.for_all (( = ) 1) hits)

let suite =
  [
    Alcotest.test_case "catalog -> profile pipeline" `Quick test_catalog_to_profile_pipeline;
    Alcotest.test_case "windowed odd-cycle bound" `Quick test_windowed_odd_cycle_bound_sound;
    Alcotest.test_case "windowed bound on 3D" `Quick test_windowed_bound_on_3d_is_zero;
    prop_windowed_bound_sound;
    Alcotest.test_case "sim policies sane" `Quick test_sim_policies_all_valid;
    Alcotest.test_case "gadget io roundtrip" `Quick test_gadget_io_roundtrip;
    Alcotest.test_case "svg of dataset coloring" `Quick test_svg_of_dataset_coloring;
    Alcotest.test_case "parallel coloring feeds scheduler" `Quick
      test_parallel_coloring_feeds_scheduler;
  ]
