module S = Ivc_grid.Stencil
module It = Ivc.Iterated

let passes_all = [ It.Reverse; It.Restart; It.Cliques; It.Decreasing_weight ]

let test_single_pass_never_worse () =
  let inst = Util.random_inst2 ~seed:71 ~x:7 ~y:6 ~bound:20 in
  let base = Ivc.Heuristics.gll inst in
  let base_mc = Util.maxcolor inst base in
  List.iter
    (fun pass ->
      let after = It.apply inst base pass in
      Util.check_valid inst after;
      Alcotest.(check bool) "pass never increases maxcolor" true
        (Util.maxcolor inst after <= base_mc))
    passes_all

let test_run_improves_bad_start () =
  let inst = Util.random_inst2 ~seed:72 ~x:6 ~y:6 ~bound:15 in
  (* stacked coloring = total weight; iterated greedy should crush it *)
  let stacked, total = Ivc.Special.color_clique ~w:(inst : S.t).w in
  let improved = It.run inst stacked ~passes:[ It.Reverse; It.Restart ] in
  Util.check_valid inst improved;
  Alcotest.(check bool) "improves a stacked coloring" true
    (Util.maxcolor inst improved < total)

let test_best_effort_beats_or_ties_every_heuristic () =
  let inst = Util.random_inst2 ~seed:73 ~x:8 ~y:8 ~bound:25 in
  let igr = It.best_effort inst in
  Util.check_valid inst igr;
  let igr_mc = Util.maxcolor inst igr in
  List.iter
    (fun (name, _, mc) ->
      Alcotest.(check bool) ("IGR <= " ^ name) true (igr_mc <= mc))
    (Ivc.Algo.run_all inst)

let test_run_respects_max_rounds () =
  let inst = Util.random_inst2 ~seed:74 ~x:5 ~y:5 ~bound:9 in
  let base = Ivc.Heuristics.gzo inst in
  let r1 = It.run ~max_rounds:1 inst base ~passes:passes_all in
  Util.check_valid inst r1

let test_3d () =
  let inst = Util.random_inst3 ~seed:75 ~x:3 ~y:4 ~z:3 ~bound:9 in
  let base = Ivc.Heuristics.gkf inst in
  let improved = It.run inst base ~passes:[ It.Cliques; It.Reverse ] in
  Util.check_valid inst improved;
  Alcotest.(check bool) "3D never worse" true
    (Util.maxcolor inst improved <= Util.maxcolor inst base)

let prop_iterated_never_worse =
  Util.qtest ~count:50 "iterated greedy monotone" Util.gen_inst2 (fun inst ->
      let base = Ivc.Heuristics.glf inst in
      let out = It.run inst base ~passes:[ It.Reverse; It.Cliques; It.Restart ] in
      Ivc.Coloring.is_valid inst out
      && Util.maxcolor inst out <= Util.maxcolor inst base)

let prop_iterated_above_lb =
  Util.qtest ~count:40 "iterated greedy respects the LB" Util.gen_inst2
    (fun inst ->
      let out = It.best_effort ~max_rounds:3 inst in
      Util.maxcolor inst out >= Ivc.Bounds.clique_lb inst)

let suite =
  [
    Alcotest.test_case "single pass monotone" `Quick test_single_pass_never_worse;
    Alcotest.test_case "improves stacked colorings" `Quick test_run_improves_bad_start;
    Alcotest.test_case "best-effort dominates heuristics" `Quick
      test_best_effort_beats_or_ties_every_heuristic;
    Alcotest.test_case "max_rounds respected" `Quick test_run_respects_max_rounds;
    Alcotest.test_case "3D passes" `Quick test_3d;
    prop_iterated_never_worse;
    prop_iterated_above_lb;
  ]
