module S = Ivc_grid.Stencil
module C = Ivc.Coloring

let inst22 = S.make2 ~x:2 ~y:2 [| 3; 2; 1; 4 |]

let test_maxcolor () =
  Alcotest.(check int) "valid stacked" 10 (C.maxcolor ~w:[| 3; 2; 1; 4 |] [| 0; 3; 5; 6 |]);
  Alcotest.(check int) "ignores uncolored" 3 (C.maxcolor ~w:[| 3; 2 |] [| 0; -1 |]);
  Alcotest.(check int) "empty" 0 (C.maxcolor ~w:[||] [||])

let test_validity_2x2 () =
  (* K4: sequential stacking is valid *)
  Alcotest.(check bool) "stacked valid" true (C.is_valid inst22 [| 0; 3; 5; 6 |]);
  (* overlap between vertices 0 and 1 *)
  Alcotest.(check bool) "overlap invalid" false (C.is_valid inst22 [| 0; 2; 5; 6 |]);
  (* uncolored vertex *)
  Alcotest.(check bool) "uncolored invalid" false (C.is_valid inst22 [| 0; 3; -1; 6 |])

let test_zero_weight_is_free () =
  let inst = S.make2 ~x:2 ~y:2 [| 5; 0; 0; 5 |] in
  (* both heavy vertices are diagonal (adjacent in 9-pt!) so they must
     be disjoint, but the zero-weight ones can sit anywhere *)
  Alcotest.(check bool) "zeros overlap everything" true
    (C.is_valid inst [| 0; 0; 0; 5 |]);
  Alcotest.(check bool) "heavy diagonal conflict" false
    (C.is_valid inst [| 0; 0; 0; 4 |])

let test_violations () =
  let viols = C.violations inst22 [| 0; 2; 5; 6 |] in
  Alcotest.(check (list (pair int int))) "one conflict" [ (0, 1) ] viols;
  Alcotest.(check (list (pair int int))) "no conflicts" []
    (C.violations inst22 [| 0; 3; 5; 6 |])

let test_assert_valid () =
  Alcotest.(check int) "returns maxcolor" 10 (C.assert_valid inst22 [| 0; 3; 5; 6 |]);
  (match C.assert_valid inst22 [| 0; 2; 5; 6 |] with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions both vertices" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected failure")

let test_interval_accessor () =
  let iv = C.interval ~w:[| 3; 2 |] [| 4; 0 |] 0 in
  Alcotest.(check int) "start" 4 iv.Ivc.Interval.start;
  Alcotest.(check int) "len" 3 iv.Ivc.Interval.len;
  Alcotest.check_raises "uncolored"
    (Invalid_argument "Coloring.interval: uncolored vertex") (fun () ->
      ignore (C.interval ~w:[| 3; 2 |] [| 4; -1 |] 1))

let test_is_valid_graph () =
  let g = Ivc_graph.Builders.path 3 in
  let w = [| 2; 2; 2 |] in
  Alcotest.(check bool) "alternating" true (C.is_valid_graph g ~w [| 0; 2; 0 |]);
  Alcotest.(check bool) "clash" false (C.is_valid_graph g ~w [| 0; 1; 4 |])

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pp_grid () =
  let out = Format.asprintf "%a" (C.pp_grid inst22) [| 0; 3; 5; 6 |] in
  Alcotest.(check bool) "shows intervals" true (contains_sub out "[0,3)")

let suite =
  [
    Alcotest.test_case "maxcolor" `Quick test_maxcolor;
    Alcotest.test_case "validity on 2x2" `Quick test_validity_2x2;
    Alcotest.test_case "zero weights conflict-free" `Quick test_zero_weight_is_free;
    Alcotest.test_case "violations" `Quick test_violations;
    Alcotest.test_case "assert_valid" `Quick test_assert_valid;
    Alcotest.test_case "interval accessor" `Quick test_interval_accessor;
    Alcotest.test_case "validity on graphs" `Quick test_is_valid_graph;
    Alcotest.test_case "pp grid" `Quick test_pp_grid;
  ]
