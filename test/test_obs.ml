(* Observability layer: span recording and nesting, disabled-mode
   no-ops, exporter well-formedness (parsed back with the library's own
   JSON parser), counter atomicity across domains, and the pool's
   mutual-exclusion guarantee while spans are being recorded. *)

module Obs = Ivc_obs
module Json = Ivc_obs.Json
module S = Ivc_grid.Stencil
module Dag = Taskpar.Dag
module Pool = Taskpar.Pool

let with_recording f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ---- JSON document helpers ------------------------------------------ *)

let get name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let events doc =
  match get "traceEvents" doc with
  | Json.List evs -> evs
  | _ -> Alcotest.fail "traceEvents is not a list"

let events_named name doc =
  List.filter (fun e -> Json.member "name" e = Some (Json.Str name)) (events doc)

let span_bounds e =
  let ts = Json.to_float (get "ts" e) in
  (ts, ts +. Json.to_float (get "dur" e))

(* ---- spans ------------------------------------------------------------ *)

let test_span_nesting () =
  let doc =
    with_recording (fun () ->
        let r =
          Obs.Span.record "outer" (fun () ->
              Obs.Span.record "inner" (fun () -> Sys.opaque_identity 1)
              + Obs.Span.record "inner" (fun () -> Sys.opaque_identity 2))
        in
        Alcotest.(check int) "span returns the body's value" 3 r;
        Obs.Export.chrome_trace ())
  in
  Alcotest.(check int) "three events" 3 (List.length (events doc));
  let outer =
    match events_named "outer" doc with
    | [ e ] -> e
    | _ -> Alcotest.fail "expected exactly one outer span"
  in
  let o0, o1 = span_bounds outer in
  Alcotest.(check int) "two inner spans" 2 (List.length (events_named "inner" doc));
  List.iter
    (fun inner ->
      let i0, i1 = span_bounds inner in
      Alcotest.(check bool) "inner starts after outer" true (i0 >= o0);
      Alcotest.(check bool) "inner ends before outer" true (i1 <= o1 +. 1e-9))
    (events_named "inner" doc)

let test_span_records_on_exception () =
  let doc =
    with_recording (fun () ->
        (try Obs.Span.record "raises" (fun () -> failwith "boom") with
        | Failure _ -> ());
        Obs.Export.chrome_trace ())
  in
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (events_named "raises" doc))

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.Counter.make "test.disabled_counter" in
  let g = Obs.Gauge.make "test.disabled_gauge" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Gauge.set g 2.5;
  let r = Obs.Span.record "invisible" (fun () -> 7) in
  Alcotest.(check int) "span is just the body" 7 r;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.Gauge.value g);
  Alcotest.(check int) "no events recorded" 0
    (List.length (events (Obs.Export.chrome_trace ())))

(* ---- exporters -------------------------------------------------------- *)

let test_exports_well_formed () =
  let trace_s, metrics_s =
    with_recording (fun () ->
        let inst = Util.random_inst2 ~seed:7 ~x:8 ~y:8 ~bound:9 in
        ignore (Ivc.Greedy.color_in_order inst (S.row_major_order inst));
        ignore (Ivc_parcolor.Parallel_greedy.color ~workers:2 inst);
        ( Json.to_string (Obs.Export.chrome_trace ()),
          Json.to_string (Obs.Export.metrics ()) ))
  in
  (* both documents re-parse, i.e. the emitters write valid JSON *)
  let trace = Json.parse trace_s in
  let metrics = Json.parse metrics_s in
  Alcotest.(check string) "displayTimeUnit" "ms"
    (match get "displayTimeUnit" trace with Json.Str s -> s | _ -> "");
  List.iter
    (fun e ->
      Alcotest.(check bool) "event has a name" true (Json.member "name" e <> None);
      Alcotest.(check string) "complete event" "X"
        (match get "ph" e with Json.Str s -> s | _ -> "");
      Alcotest.(check bool) "nonnegative duration" true
        (Json.to_float (get "dur" e) >= 0.0))
    (events trace);
  let counters = get "counters" metrics in
  let vertices = Json.to_float (get "greedy.vertices_colored" counters) in
  Alcotest.(check bool) "greedy counter advanced" true (vertices >= 64.0);
  (match get "spans" metrics with
  | Json.Obj aggs ->
      Alcotest.(check bool) "span aggregates present" true (aggs <> []);
      List.iter
        (fun (_, agg) ->
          Alcotest.(check bool) "agg count positive" true
            (Json.to_float (get "count" agg) > 0.0))
        aggs
  | _ -> Alcotest.fail "spans is not an object")

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "with \"quotes\", a \\ and a \n newline");
        ("n", Json.Num 1.5);
        ("big", Json.Num 123456789.0);
        ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (Json.parse (Json.to_string v) = v);
  List.iter
    (fun bad ->
      match Json.parse bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "accepted malformed input %S" bad)
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

(* ---- multi-domain behaviour ------------------------------------------ *)

let test_counter_atomic_across_domains () =
  with_recording (fun () ->
      let c = Obs.Counter.make "test.atomic" in
      let per_domain = 25_000 in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Obs.Counter.incr c
                done))
      in
      List.iter Domain.join domains;
      Alcotest.(check int) "no lost increments" (4 * per_domain)
        (Obs.Counter.value c))

let test_pool_checked_with_spans () =
  with_recording (fun () ->
      let inst = Util.random_inst2 ~seed:35 ~x:6 ~y:6 ~bound:5 in
      let starts = Ivc.Heuristics.glf inst in
      let dag = Dag.of_coloring inst ~starts ~cost:(fun _ -> 1.0) in
      let conflicts u v =
        let adj = ref false in
        S.iter_neighbors inst u (fun x -> if x = v then adj := true);
        !adj
      in
      let work _ =
        let acc = ref 0 in
        for i = 1 to 2_000 do
          acc := !acc + i
        done;
        ignore (Sys.opaque_identity !acc)
      in
      let _, violations = Pool.run_checked dag ~workers:4 ~work ~conflicts in
      Alcotest.(check int) "exclusion holds while tracing" 0 violations;
      (* every task produced a span, and the counters saw every task *)
      let doc = Obs.Export.chrome_trace () in
      Alcotest.(check int) "one span per task" dag.Dag.n
        (List.length (events_named "pool.task" doc));
      Alcotest.(check int) "task counter" dag.Dag.n
        (Obs.Counter.value (Obs.Counter.make "pool.tasks_run")))

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span survives exceptions" `Quick test_span_records_on_exception;
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "exports are well-formed" `Quick test_exports_well_formed;
    Alcotest.test_case "json roundtrip and rejection" `Quick test_json_roundtrip;
    Alcotest.test_case "counters atomic across domains" `Quick
      test_counter_atomic_across_domains;
    Alcotest.test_case "pool exclusion while tracing" `Quick
      test_pool_checked_with_spans;
  ]
