module S = Ivc_grid.Stencil
module O = Ivc.Order

let is_permutation n a =
  let seen = Array.make n false in
  Array.iter (fun v -> if v >= 0 && v < n then seen.(v) <- true) a;
  Array.length a = n && Array.for_all Fun.id seen

let instances =
  [
    ("2d 5x7", Util.random_inst2 ~seed:51 ~x:5 ~y:7 ~bound:9);
    ("2d 8x8", Util.random_inst2 ~seed:52 ~x:8 ~y:8 ~bound:9);
    ("3d 3x4x2", Util.random_inst3 ~seed:53 ~x:3 ~y:4 ~z:2 ~bound:9);
  ]

let test_all_are_permutations () =
  List.iter
    (fun (iname, inst) ->
      let n = S.n_vertices inst in
      List.iter
        (fun (oname, order) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" oname iname)
            true
            (is_permutation n (order inst)))
        O.all)
    instances

let test_hilbert_locality () =
  (* on a power-of-two square grid, consecutive Hilbert cells are
     always grid neighbors (Chebyshev distance 1) *)
  let inst = S.init2 ~x:8 ~y:8 (fun _ _ -> 1) in
  let order = O.hilbert inst in
  for p = 0 to Array.length order - 2 do
    let i1, j1 = S.coord2 inst order.(p) in
    let i2, j2 = S.coord2 inst order.(p + 1) in
    Alcotest.(check bool) "consecutive cells adjacent" true
      (max (abs (i1 - i2)) (abs (j1 - j2)) = 1)
  done

let test_zorder_not_always_local () =
  (* contrast: Z-order jumps; count non-adjacent consecutive pairs *)
  let inst = S.init2 ~x:8 ~y:8 (fun _ _ -> 1) in
  let order = O.zorder inst in
  let jumps = ref 0 in
  for p = 0 to Array.length order - 2 do
    let i1, j1 = S.coord2 inst order.(p) in
    let i2, j2 = S.coord2 inst order.(p + 1) in
    if max (abs (i1 - i2)) (abs (j1 - j2)) > 1 then incr jumps
  done;
  Alcotest.(check bool) "zorder has jumps" true (!jumps > 0)

let test_diagonal_monotone () =
  let inst = S.init2 ~x:4 ~y:5 (fun _ _ -> 1) in
  let order = O.diagonal inst in
  let prev = ref (-1) in
  Array.iter
    (fun v ->
      let i, j = S.coord2 inst v in
      Alcotest.(check bool) "wavefront nondecreasing" true (i + j >= !prev);
      prev := i + j)
    order

let test_smallest_last_greedy_valid () =
  List.iter
    (fun (iname, inst) ->
      let starts = Ivc.Greedy.color_in_order inst (O.smallest_last inst) in
      Alcotest.(check bool) (iname ^ " smallest-last valid") true
        (Ivc.Coloring.is_valid inst starts))
    instances

let test_spiral_starts_at_origin () =
  let inst = S.init2 ~x:3 ~y:4 (fun _ _ -> 1) in
  let order = O.spiral inst in
  Alcotest.(check int) "first cell is (0,0)" 0 order.(0);
  (* spiral walks the top row first *)
  Alcotest.(check int) "then (0,1)" 1 order.(1)

let test_random_deterministic () =
  let inst = Util.random_inst2 ~seed:54 ~x:6 ~y:6 ~bound:9 in
  Alcotest.(check (array int)) "same seed same order"
    (O.random ~seed:3 inst) (O.random ~seed:3 inst);
  Alcotest.(check bool) "different seeds differ" true
    (O.random ~seed:3 inst <> O.random ~seed:4 inst)

let prop_all_orders_color_validly =
  Util.qtest ~count:40 "every order yields a valid greedy coloring"
    Util.gen_inst2 (fun inst ->
      List.for_all
        (fun (_, order) ->
          Ivc.Coloring.is_valid inst (Ivc.Greedy.color_in_order inst (order inst)))
        O.all)

let suite =
  [
    Alcotest.test_case "all orders are permutations" `Quick test_all_are_permutations;
    Alcotest.test_case "hilbert locality" `Quick test_hilbert_locality;
    Alcotest.test_case "zorder jumps" `Quick test_zorder_not_always_local;
    Alcotest.test_case "diagonal wavefront" `Quick test_diagonal_monotone;
    Alcotest.test_case "smallest-last greedy valid" `Quick test_smallest_last_greedy_valid;
    Alcotest.test_case "spiral shape" `Quick test_spiral_starts_at_origin;
    Alcotest.test_case "random order determinism" `Quick test_random_deterministic;
    prop_all_orders_color_validly;
  ]
