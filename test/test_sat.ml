module I = Nae3sat.Instance
module R = Nae3sat.Reduction

let fano =
  I.make 7 [ (1, 2, 3); (1, 4, 5); (1, 6, 7); (2, 4, 6); (2, 5, 7); (3, 4, 7); (3, 5, 6) ]

let test_instance_validation () =
  Alcotest.check_raises "unordered clause"
    (Invalid_argument "Nae3sat.Instance.make: clause must satisfy 1 <= j1 < j2 < j3 <= n")
    (fun () -> ignore (I.make 4 [ (2, 1, 3) ]));
  Alcotest.check_raises "variable out of range"
    (Invalid_argument "Nae3sat.Instance.make: clause must satisfy 1 <= j1 < j2 < j3 <= n")
    (fun () -> ignore (I.make 3 [ (1, 2, 4) ]))

let test_clause_semantics () =
  let c = { I.j1 = 1; j2 = 2; j3 = 3 } in
  Alcotest.(check bool) "mixed ok" true (I.clause_ok c [| true; false; true |]);
  Alcotest.(check bool) "all true bad" false (I.clause_ok c [| true; true; true |]);
  Alcotest.(check bool) "all false bad" false (I.clause_ok c [| false; false; false |])

let test_complement_symmetry () =
  let t = I.make 5 [ (1, 2, 3); (2, 3, 5); (1, 4, 5) ] in
  match I.solve_brute t with
  | None -> Alcotest.fail "expected satisfiable"
  | Some a ->
      Alcotest.(check bool) "assignment works" true (I.satisfies t a);
      Alcotest.(check bool) "complement works too" true
        (I.satisfies t (Array.map not a))

let test_fano_unsat () =
  Alcotest.(check bool) "fano plane is not 2-colorable" false (I.is_satisfiable fano)

let test_structure_checks () =
  R.check_structure (I.make 3 [ (1, 2, 3) ]);
  R.check_structure (I.make 5 [ (1, 2, 5); (2, 3, 4); (1, 4, 5) ]);
  R.check_structure fano

let test_gadget_dimensions () =
  let sat = I.make 4 [ (1, 2, 3); (2, 3, 4) ] in
  let inst = R.build sat in
  match (inst : Ivc_grid.Stencil.t).Ivc_grid.Stencil.dims with
  | Ivc_grid.Stencil.D3 (x, y, z) ->
      Alcotest.(check int) "width 2n+10" 18 x;
      Alcotest.(check int) "height 9" 9 y;
      Alcotest.(check int) "depth 2m" 4 z
  | Ivc_grid.Stencil.D2 _ -> Alcotest.fail "gadget must be 3D"

let test_forward_direction () =
  (* positive NAE-3SAT instance -> valid 14-coloring of the gadget *)
  let sat = I.make 4 [ (1, 2, 3); (2, 3, 4); (1, 2, 4) ] in
  match I.solve_brute sat with
  | None -> Alcotest.fail "expected satisfiable"
  | Some a ->
      let inst = R.build sat in
      let starts = R.coloring_of_assignment sat a in
      let mc = Ivc.Coloring.assert_valid inst starts in
      Alcotest.(check bool) "within k=14" true (mc <= R.k)

let test_forward_rejects_bad_assignment () =
  let sat = I.make 3 [ (1, 2, 3) ] in
  match R.coloring_of_assignment sat [| true; true; true |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "all-equal assignment must be rejected"

let test_backward_direction () =
  (* valid 14-coloring of the gadget -> satisfying assignment *)
  let sat = I.make 3 [ (1, 2, 3) ] in
  let inst = R.build sat in
  match Ivc_exact.Cp.decide inst ~k:R.k with
  | Ivc_exact.Cp.Colorable starts ->
      let a = R.assignment_of_coloring sat starts in
      Alcotest.(check bool) "extracted assignment satisfies" true (I.satisfies sat a)
  | _ -> Alcotest.fail "positive instance must be 14-colorable"

let equivalence sat =
  let inst = R.build sat in
  match Ivc_exact.Cp.decide ~budget:20_000_000 inst ~k:R.k with
  | Ivc_exact.Cp.Colorable starts ->
      Alcotest.(check bool) "gadget colorable => instance satisfiable" true
        (I.is_satisfiable sat);
      ignore (Ivc.Coloring.assert_valid inst starts);
      let a = R.assignment_of_coloring sat starts in
      Alcotest.(check bool) "extracted assignment valid" true (I.satisfies sat a)
  | Ivc_exact.Cp.Not_colorable ->
      Alcotest.(check bool) "gadget not colorable => instance unsatisfiable" false
        (I.is_satisfiable sat)
  | Ivc_exact.Cp.Unknown -> Alcotest.fail "budget exhausted"

let test_equivalence_random_small () =
  (* random positive instances are almost always satisfiable; this
     checks the satisfiable side of the equivalence on several *)
  List.iter
    (fun seed -> equivalence (I.random ~seed ~n:4 ~m:3))
    [ 1; 2; 3; 4; 5 ]

let test_equivalence_fano_slow () =
  (* the unsatisfiable side, via the smallest non-2-colorable 3-uniform
     hypergraph (the Fano plane): the gadget must NOT be 14-colorable *)
  equivalence fano

let test_random_generator () =
  let t = I.random ~seed:42 ~n:6 ~m:10 in
  Alcotest.(check int) "clause count" 10 (List.length t.I.clauses);
  List.iter
    (fun { I.j1; j2; j3 } ->
      Alcotest.(check bool) "ordered" true (1 <= j1 && j1 < j2 && j2 < j3 && j3 <= 6))
    t.I.clauses;
  (* determinism *)
  Alcotest.(check bool) "deterministic" true (I.random ~seed:42 ~n:6 ~m:10 = t)

let test_pp () =
  let out = Format.asprintf "%a" I.pp (I.make 3 [ (1, 2, 3) ]) in
  Alcotest.(check bool) "mentions sizes" true (String.length out > 10)

let suite =
  [
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "clause semantics" `Quick test_clause_semantics;
    Alcotest.test_case "complement symmetry" `Quick test_complement_symmetry;
    Alcotest.test_case "fano is unsat" `Quick test_fano_unsat;
    Alcotest.test_case "gadget structure" `Quick test_structure_checks;
    Alcotest.test_case "gadget dimensions" `Quick test_gadget_dimensions;
    Alcotest.test_case "forward direction" `Quick test_forward_direction;
    Alcotest.test_case "rejects bad assignments" `Quick test_forward_rejects_bad_assignment;
    Alcotest.test_case "backward direction" `Quick test_backward_direction;
    Alcotest.test_case "equivalence on random instances" `Quick test_equivalence_random_small;
    Alcotest.test_case "equivalence on Fano (negative side)" `Slow test_equivalence_fano_slow;
    Alcotest.test_case "random generator" `Quick test_random_generator;
    Alcotest.test_case "pretty printer" `Quick test_pp;
  ]
