module S = Ivc_grid.Stencil
module Bo = Ivc.Bounds

let test_fixed_2x2 () =
  let inst = S.make2 ~x:2 ~y:2 [| 3; 2; 1; 4 |] in
  Alcotest.(check int) "weight lb" 4 (Bo.weight_lb inst);
  Alcotest.(check int) "pair lb" 7 (Bo.pair_lb inst);
  Alcotest.(check int) "clique lb is the K4 sum" 10 (Bo.clique_lb inst);
  Alcotest.(check int) "total ub" 10 (Bo.total_ub inst)

let test_clique_lb_3d () =
  let inst = S.init3 ~x:2 ~y:2 ~z:2 (fun _ _ _ -> 3) in
  Alcotest.(check int) "K8 sum" 24 (Bo.clique_lb inst)

let test_clique_lb_picks_heaviest_block () =
  let inst =
    S.make2 ~x:2 ~y:3 [| 1; 1; 9; 1; 1; 9 |]
    (* blocks: {1,1,1,1}=4 and {1,9,1,9}=20 *)
  in
  Alcotest.(check int) "heaviest block" 20 (Bo.clique_lb inst)

let test_odd_cycle_lb_beats_clique () =
  (* Figure 2 phenomenon: embed a weight pattern whose best odd cycle
     bound exceeds every K4. A 3x3 ring around a zero center carries an
     odd 8+1... the 8-ring is even; instead use a triangle-free-ish
     pattern: a C9 embedded as in Figure 2 needs a bigger grid, so here
     we check the bound on a 3x3 with a heavy odd 3-cycle (triangle =
     clique K3, whose minchain3 equals its sum, hence within K4 sums).
     The strict-improvement case is covered in test_exact with the
     Figure 3 reconstruction; this test checks consistency only. *)
  let inst = Util.random_inst2 ~seed:4 ~x:3 ~y:3 ~bound:9 in
  let oc = Bo.odd_cycle_lb ~max_len:7 inst in
  let cl = Bo.clique_lb inst in
  (* both are lower bounds for the exact optimum *)
  match Ivc_exact.Cp.optimize inst with
  | None -> Alcotest.fail "exact budget"
  | Some (opt, _) ->
      Alcotest.(check bool) "odd cycle lb sound" true (oc <= opt);
      Alcotest.(check bool) "clique lb sound" true (cl <= opt)

let test_combined () =
  let inst = S.make2 ~x:2 ~y:2 [| 3; 2; 1; 4 |] in
  Alcotest.(check int) "combined without cycles" 10 (Bo.combined inst);
  Alcotest.(check bool) "combined with cycles at least clique" true
    (Bo.combined ~with_odd_cycles:true inst >= 10)

let test_greedy_ub_formula () =
  (* isolated-ish: a 2x2 with unit weights: each vertex has 3 neighbors
     of weight 1: bound = 3 + 4*1 - 3 = 4 *)
  let inst = S.init2 ~x:2 ~y:2 (fun _ _ -> 1) in
  Alcotest.(check int) "per vertex" 4 (Bo.greedy_vertex_ub inst 0);
  Alcotest.(check int) "max over vertices" 4 (Bo.greedy_ub inst)

let test_greedy_ub_clamped_at_weight () =
  let inst = S.make2 ~x:2 ~y:2 [| 0; 0; 0; 5 |] in
  Alcotest.(check bool) "never below own weight" true
    (Bo.greedy_vertex_ub inst 3 >= 5)

let test_degenerate_no_blocks () =
  (* 2x2 is the smallest with a block; a 1-wide instance is not allowed
     by the problem statement (X, Y > 1) but the API accepts it: then
     clique_lb falls back to the pair bound *)
  let inst = S.make2 ~x:1 ~y:4 [| 2; 3; 1; 2 |] in
  Alcotest.(check int) "falls back to pairs" 5 (Bo.clique_lb inst)

let prop_bounds_sound =
  Util.qtest ~count:40 "bounds below exact optimum" Util.gen_inst2 (fun inst ->
      match Ivc_exact.Optimize.solve ~budget:40_000 inst with
      | { Ivc_exact.Optimize.proven_optimal = false; _ } ->
          QCheck2.assume_fail ()
      | { Ivc_exact.Optimize.upper_bound = opt; _ } ->
          Bo.combined inst <= opt
          && Bo.pair_lb inst <= opt
          && Bo.weight_lb inst <= opt)

let prop_greedy_ub_holds_3d =
  Util.qtest ~count:25 "Lemma 7 bound holds in 3D" Util.gen_inst3 (fun inst ->
      let starts = Ivc.Heuristics.gzo inst in
      let ub = Bo.greedy_ub inst in
      Util.maxcolor inst starts <= ub)

let suite =
  [
    Alcotest.test_case "fixed 2x2 bounds" `Quick test_fixed_2x2;
    Alcotest.test_case "K8 bound" `Quick test_clique_lb_3d;
    Alcotest.test_case "heaviest block" `Quick test_clique_lb_picks_heaviest_block;
    Alcotest.test_case "odd cycle bound soundness" `Quick test_odd_cycle_lb_beats_clique;
    Alcotest.test_case "combined" `Quick test_combined;
    Alcotest.test_case "Lemma 7 formula" `Quick test_greedy_ub_formula;
    Alcotest.test_case "Lemma 7 clamped" `Quick test_greedy_ub_clamped_at_weight;
    Alcotest.test_case "degenerate fallback" `Quick test_degenerate_no_blocks;
    prop_bounds_sound;
    prop_greedy_ub_holds_3d;
  ]
