(* The resilience layer: deadline tokens, the certificate gate, the
   portfolio driver, fault injection, and the hardened pool/parcolor
   recovery paths.

   The fault tests honor IVC_FAULT_PLAN when set (that is how the CI
   fault-injection job turns the screws), falling back to a fixed local
   plan so the tests are deterministic in a plain run. *)

module S = Ivc_grid.Stencil
module R = Ivc_resilient
module Cert = Ivc_resilient.Cert
module Faults = Ivc_resilient.Faults
module Driver = Ivc_resilient.Driver
module Deadline = Ivc_resilient.Deadline
module Pool = Taskpar.Pool
module Dag = Taskpar.Dag

let env_plan default = Option.value (Faults.from_env ()) ~default

(* a cancel closure that flips to true at call number [n] *)
let cancel_after n =
  let k = ref 0 in
  fun () ->
    incr k;
    !k > n

(* ---- deadline tokens -------------------------------------------------- *)

let test_deadline_token () =
  let t = Deadline.never () in
  Alcotest.(check bool) "never not expired" false (Deadline.expired t);
  Alcotest.(check (option (float 1.0))) "never has no deadline" None
    (Deadline.remaining_s t);
  Deadline.cancel t;
  Alcotest.(check bool) "cancel expires" true (Deadline.expired t);
  let z = Deadline.make ~seconds:0.0 () in
  Alcotest.(check bool) "zero deadline expired" true (Deadline.expired z);
  Alcotest.(check (option (float 1e-9))) "zero remaining" (Some 0.0)
    (Deadline.remaining_s z);
  let far = Deadline.make ~seconds:3600.0 () in
  Alcotest.(check bool) "far deadline live" false (Deadline.expired far);
  let extra = ref false in
  let combined = Deadline.combine far (fun () -> !extra) in
  Alcotest.(check bool) "combine: both live" false (combined ());
  extra := true;
  Alcotest.(check bool) "combine: extra fires" true (combined ())

(* ---- certificate gate ------------------------------------------------- *)

(* The positive direction is the fuzzer's cert oracle (every catalog
   heuristic must certify, with a consistent maxcolor); running it
   here keeps qcheck and fuzz campaigns on one oracle codebase. *)
let qtest_cert_accepts =
  Util.qtest ~count:60 "cert accepts every heuristic" Util.gen_inst2
    (Util.oracle_holds Ivc_check.Oracles.cert)

let qtest_cert_accepts_3d =
  Util.qtest ~count:30 "cert accepts heuristics on 3D" Util.gen_inst3
    (Util.oracle_holds Ivc_check.Oracles.cert)

let qtest_cert_rejects_corruption =
  Util.qtest ~count:60 "cert rejects corrupted colorings" Util.gen_inst2
    (fun inst ->
      let n = S.n_vertices inst in
      let starts = Ivc.Bipartite_decomp.bdp inst in
      let wrong_len =
        match Cert.check inst (Array.make (n + 1) 0) with
        | Error (Cert.Wrong_length { expected; got }) ->
            expected = n && got = n + 1
        | _ -> false
      in
      (* blind a positive-weight vertex *)
      let uncolored =
        match Array.to_list (Array.init n Fun.id)
              |> List.find_opt (fun v -> S.weight inst v > 0) with
        | None -> true (* all-zero instance: nothing to corrupt *)
        | Some v -> (
            let bad = Array.copy starts in
            bad.(v) <- -1;
            match Cert.check inst bad with
            | Error (Cert.Uncolored _) -> true
            | _ -> false)
      in
      (* collide two adjacent positive-weight intervals *)
      let overlap =
        let pair = ref None in
        for u = 0 to n - 1 do
          if S.weight inst u > 0 then
            S.iter_neighbors inst u (fun v ->
                if !pair = None && S.weight inst v > 0 then
                  pair := Some (u, v))
        done;
        match !pair with
        | None -> true (* no adjacent weighted pair exists *)
        | Some (u, v) -> (
            let bad = Array.copy starts in
            bad.(v) <- bad.(u);
            match Cert.check inst bad with
            | Error (Cert.Overlap _) -> true
            | _ -> false)
      in
      wrong_len && uncolored && overlap)

(* ---- portfolio driver -------------------------------------------------- *)

let outcome_certifies inst (o : Driver.outcome) =
  (match Cert.check inst o.Driver.starts with
  | Ok mc -> mc = o.Driver.maxcolor
  | Error _ -> false)
  && o.Driver.lower_bound <= o.Driver.maxcolor
  && (not o.Driver.proven_optimal
     || o.Driver.lower_bound = o.Driver.maxcolor)

let qtest_portfolio_valid =
  Util.qtest ~count:40 "portfolio outcome always certifies" Util.gen_inst2
    (Util.oracle_holds Ivc_check.Oracles.portfolio)

let qtest_portfolio_cancelled_midway =
  (* cancellation at an arbitrary instant must still yield a certified
     coloring: the fallback stage runs before the first poll *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"portfolio valid under random cancellation"
       ~count:40
       ~print:(fun (inst, n) ->
         Printf.sprintf "%s after %d polls" (Util.print_inst inst) n)
       QCheck2.Gen.(pair Util.gen_inst2 (int_range 0 60))
       (fun (inst, n) ->
         match Driver.solve ~budget:20_000 ~cancel:(cancel_after n) inst with
         | Ok o -> outcome_certifies inst o
         | Error _ -> false))

let test_portfolio_zero_deadline () =
  let inst = Util.random_inst2 ~seed:5 ~x:24 ~y:24 ~bound:20 in
  match Driver.solve ~deadline_s:0.0 inst with
  | Ok o ->
      Alcotest.(check bool) "certifies" true (outcome_certifies inst o);
      Alcotest.(check bool) "not exact provenance" true
        (o.Driver.provenance <> Driver.Exact)
  | Error e -> Alcotest.fail (Cert.to_string e)

let test_portfolio_exact_on_easy () =
  let inst = Util.random_inst2 ~seed:9 ~x:4 ~y:4 ~bound:8 in
  match Driver.solve inst with
  | Ok o ->
      Alcotest.(check bool) "proven optimal" true o.Driver.proven_optimal;
      Alcotest.(check bool) "exact provenance" true
        (o.Driver.provenance = Driver.Exact);
      Alcotest.(check int) "lb meets mc" o.Driver.maxcolor o.Driver.lower_bound
  | Error e -> Alcotest.fail (Cert.to_string e)

(* ---- cancellation inside the solvers ----------------------------------- *)

let test_order_bb_cancelled () =
  let inst = Util.random_inst2 ~seed:21 ~x:10 ~y:10 ~bound:15 in
  let st = Ivc_exact.Order_bb.solve ~cancel:(fun () -> true) inst in
  let starts = Ivc_exact.Order_bb.starts_of st in
  Util.check_valid inst starts;
  Alcotest.(check bool) "bounds ordered" true
    (Ivc_exact.Order_bb.lower_bound_of st
    <= Ivc_exact.Order_bb.upper_bound_of st)

let test_optimize_cancelled () =
  let inst = Util.random_inst2 ~seed:22 ~x:10 ~y:10 ~bound:15 in
  let o = Ivc_exact.Optimize.solve ~cancel:(fun () -> true) inst in
  Util.check_valid inst o.Ivc_exact.Optimize.starts;
  Alcotest.(check bool) "bounds ordered" true
    (o.Ivc_exact.Optimize.lower_bound <= o.Ivc_exact.Optimize.upper_bound)

let test_iterated_cancelled () =
  let inst = Util.random_inst2 ~seed:23 ~x:8 ~y:8 ~bound:12 in
  let start = Ivc.Heuristics.gll inst in
  let improved =
    Ivc.Iterated.run ~cancel:(fun () -> true) inst start
      ~passes:[ Ivc.Iterated.Reverse; Ivc.Iterated.Cliques ]
  in
  Util.check_valid inst improved;
  Alcotest.(check bool) "never worse than input" true
    (Util.maxcolor inst improved <= Util.maxcolor inst start)

(* ---- fault plans -------------------------------------------------------- *)

let test_faults_parse_roundtrip () =
  let p = Faults.parse "seed=7,crash=0.25,delay=0.05:0.002,lost=0.1" in
  Alcotest.(check int) "seed" 7 p.Faults.seed;
  Alcotest.(check (float 1e-9)) "crash" 0.25 p.Faults.crash;
  Alcotest.(check (float 1e-9)) "delay" 0.05 p.Faults.delay;
  Alcotest.(check (float 1e-9)) "delay_s" 0.002 p.Faults.delay_s;
  Alcotest.(check (float 1e-9)) "lost" 0.1 p.Faults.lost;
  let q = Faults.parse (Faults.to_string p) in
  Alcotest.(check bool) "roundtrip" true (p = q);
  Alcotest.(check bool) "none is none" true (Faults.is_none Faults.none);
  (match Faults.parse "bogus=1" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "junk plan must be rejected");
  match Faults.parse "crash=2.0" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability > 1 must be rejected"

let test_faults_deterministic () =
  let p = Faults.parse "seed=13,crash=0.5,lost=0.2" in
  for task = 0 to 50 do
    for attempt = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "decide stable for (%d,%d)" task attempt)
        true
        (Faults.decide p ~task ~attempt = Faults.decide p ~task ~attempt)
    done
  done;
  (* different seeds must not produce identical decision vectors *)
  let q = { p with Faults.seed = 14 } in
  let vec plan =
    List.init 200 (fun t -> Faults.decide plan ~task:t ~attempt:0)
  in
  Alcotest.(check bool) "seed changes decisions" true (vec p <> vec q)

(* ---- hardened pool ------------------------------------------------------ *)

let pool_dag () =
  let inst = Util.random_inst2 ~seed:31 ~x:5 ~y:5 ~bound:9 in
  let starts = Ivc.Heuristics.gll inst in
  (inst, Dag.of_coloring inst ~starts ~cost:(fun _ -> 1.0))

let test_pool_recovers_from_faults () =
  (* the contract under ANY plan (CI sweeps several): the pool always
     drains without deadlock, every task either ran or is reported as a
     typed permanent failure after exactly max_retries + 1 attempts,
     and nothing is silently dropped. With the default local plan the
     retry budget is ample and no failure survives. *)
  let plan = env_plan (Faults.parse "seed=11,crash=0.25,lost=0.1") in
  let max_retries = 8 in
  let _, dag = pool_dag () in
  let ran = Array.init dag.Dag.n (fun _ -> Atomic.make 0) in
  let work v = Atomic.incr ran.(v) in
  let wrapped = Faults.wrap plan ~n:dag.Dag.n work in
  let _, failures = Pool.run_result ~max_retries dag ~workers:(Util.workers ()) ~work:wrapped in
  List.iter
    (fun (f : Pool.failure) ->
      Alcotest.(check int)
        (Printf.sprintf "task %d exhausted its retries" f.Pool.task)
        (max_retries + 1) f.Pool.attempts)
    failures;
  let failed = List.map (fun (f : Pool.failure) -> f.Pool.task) failures in
  Array.iteri
    (fun v c ->
      Alcotest.(check bool)
        (Printf.sprintf "task %d ran or was reported" v)
        true
        (Atomic.get c >= 1 || List.mem v failed))
    ran;
  if Faults.from_env () = None then
    Alcotest.(check int) "no permanent failures under the local plan" 0
      (List.length failures)

let test_pool_typed_failure () =
  let _, dag = pool_dag () in
  let others = ref 0 in
  let work v = if v = 0 then failwith "task zero is cursed" else incr others in
  let _, failures = Pool.run_result ~max_retries:2 dag ~workers:(Util.workers ()) ~work in
  (match failures with
  | [ { Pool.task = 0; attempts = 3; error = Failure _ } ] -> ()
  | [ f ] ->
      Alcotest.fail
        (Printf.sprintf "unexpected failure record: task %d after %d attempts"
           f.Pool.task f.Pool.attempts)
  | l -> Alcotest.fail (Printf.sprintf "%d failures, expected 1" (List.length l)));
  (* the pool drained: every other task still ran despite the failure *)
  Alcotest.(check int) "all other tasks ran" (dag.Dag.n - 1) !others

let test_pool_run_reraises () =
  let _, dag = pool_dag () in
  match Pool.run dag ~workers:(Util.workers ~max:2 ()) ~work:(fun v -> if v = 3 then failwith "boom")
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "run must re-raise the task failure"

let test_pool_failure_counters () =
  Ivc_obs.reset ();
  Ivc_obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Ivc_obs.set_enabled false;
      Ivc_obs.reset ())
    (fun () ->
      let _, dag = pool_dag () in
      let work v = if v = 0 then failwith "cursed" in
      let _, _ = Pool.run_result ~max_retries:2 dag ~workers:(Util.workers ~max:2 ()) ~work in
      let v name = Ivc_obs.Counter.value (Ivc_obs.Counter.make name) in
      Alcotest.(check int) "failures counted" 3 (v "pool.task_failures");
      Alcotest.(check int) "retries counted" 2 (v "pool.task_retries");
      Alcotest.(check int) "permanent counted" 1
        (v "pool.tasks_failed_permanently"))

(* ---- parcolor recovery --------------------------------------------------- *)

let test_parcolor_recovers_from_faults () =
  let plan = env_plan (Faults.parse "seed=17,crash=0.4,lost=0.1") in
  let inst = Util.random_inst2 ~seed:41 ~x:16 ~y:16 ~bound:12 in
  let fault = Faults.parcolor_hook plan ~n:(S.n_vertices inst) in
  let starts, stats = Ivc_parcolor.Parallel_greedy.color ~workers:(Util.workers ()) ~fault inst in
  Util.check_valid inst starts;
  Alcotest.(check bool) "faults were recovered" true
    (stats.Ivc_parcolor.Parallel_greedy.faults_recovered > 0)

let test_parcolor_cancelled_still_complete () =
  let inst = Util.random_inst2 ~seed:43 ~x:16 ~y:16 ~bound:12 in
  let starts, stats =
    Ivc_parcolor.Parallel_greedy.color ~workers:(Util.workers ()) ~cancel:(fun () -> true) inst
  in
  Util.check_valid inst starts;
  Alcotest.(check bool) "reported cancelled" true
    stats.Ivc_parcolor.Parallel_greedy.cancelled

let qtest_parcolor_fault_validity =
  Util.qtest ~count:25 "parcolor valid under faults" Util.gen_inst2
    (fun inst ->
      let plan = env_plan (Faults.parse "seed=19,crash=0.3") in
      let fault = Faults.parcolor_hook plan ~n:(S.n_vertices inst) in
      let starts, _ =
        Ivc_parcolor.Parallel_greedy.color ~workers:(Util.workers ~max:2 ()) ~fault inst
      in
      Ivc.Coloring.is_valid inst starts)

(* ---- stkde end-to-end under faults ---------------------------------------- *)

let test_stkde_faulty_matches_sequential () =
  let cloud = Spatial_data.Datasets.dengue ~scale:0.02 () in
  let cfg =
    Stkde.App.make ~cloud ~voxels:(8, 8, 4) ~boxes:(4, 4, 2)
      ~hs:((cloud.Spatial_data.Points.x1 -. cloud.Spatial_data.Points.x0) /. 10.0)
      ~ht:((cloud.Spatial_data.Points.t1 -. cloud.Spatial_data.Points.t0) /. 5.0)
  in
  let inst = Stkde.App.coloring_instance cfg in
  let starts = Ivc.Bipartite_decomp.bdp inst in
  (* crash-only: the scatter body is not idempotent, so lost-result
     faults (recovery re-executes) would double-count density mass *)
  let plan =
    let p = env_plan (Faults.parse "seed=29,crash=0.3") in
    { p with Faults.lost = 0.0 }
  in
  let wrap_task = Faults.wrap plan ~n:(S.n_vertices inst) in
  let seq = Stkde.App.density_sequential cfg in
  let par, _ = Stkde.App.density_parallel ~wrap_task cfg ~starts ~workers:(Util.workers ()) in
  Alcotest.(check bool) "density identical despite faults" true
    (Stkde.App.max_diff seq par < 1e-9)

let suite =
  [
    Alcotest.test_case "deadline token" `Quick test_deadline_token;
    qtest_cert_accepts;
    qtest_cert_accepts_3d;
    qtest_cert_rejects_corruption;
    qtest_portfolio_valid;
    qtest_portfolio_cancelled_midway;
    Alcotest.test_case "portfolio under zero deadline" `Quick
      test_portfolio_zero_deadline;
    Alcotest.test_case "portfolio exact on easy instance" `Quick
      test_portfolio_exact_on_easy;
    Alcotest.test_case "order-bb cancelled" `Quick test_order_bb_cancelled;
    Alcotest.test_case "optimize cancelled" `Quick test_optimize_cancelled;
    Alcotest.test_case "iterated cancelled" `Quick test_iterated_cancelled;
    Alcotest.test_case "fault plan parse roundtrip" `Quick
      test_faults_parse_roundtrip;
    Alcotest.test_case "fault decisions deterministic" `Quick
      test_faults_deterministic;
    Alcotest.test_case "pool recovers from faults" `Quick
      test_pool_recovers_from_faults;
    Alcotest.test_case "pool typed failure" `Quick test_pool_typed_failure;
    Alcotest.test_case "pool run re-raises" `Quick test_pool_run_reraises;
    Alcotest.test_case "pool failure counters" `Quick test_pool_failure_counters;
    Alcotest.test_case "parcolor recovers from faults" `Quick
      test_parcolor_recovers_from_faults;
    Alcotest.test_case "parcolor cancelled still complete" `Quick
      test_parcolor_cancelled_still_complete;
    qtest_parcolor_fault_validity;
    Alcotest.test_case "stkde under faults" `Quick
      test_stkde_faulty_matches_sequential;
  ]
