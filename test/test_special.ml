module Sp = Ivc.Special
module B = Ivc_graph.Builders
module C = Ivc.Coloring
module S = Ivc_grid.Stencil

let exact_graph g w =
  match Ivc_exact.Cp.optimize_graph g ~w with
  | Some (opt, _) -> opt
  | None -> Alcotest.fail "exact solver ran out of budget"

let test_clique () =
  let w = [| 3; 1; 4; 1; 5 |] in
  let starts, mc = Sp.color_clique ~w in
  Alcotest.(check int) "uses the sum" 14 mc;
  Alcotest.(check bool) "valid on K5" true
    (C.is_valid_graph (B.clique 5) ~w starts);
  (* optimality vs exact *)
  Alcotest.(check int) "matches exact" (exact_graph (B.clique 5) w) mc

let test_bipartite_complete () =
  let g = B.complete_bipartite 2 3 in
  let w = [| 4; 2; 3; 5; 1 |] in
  match Sp.color_bipartite g ~w with
  | None -> Alcotest.fail "K_{2,3} is bipartite"
  | Some (starts, mc) ->
      Alcotest.(check int) "max edge sum" 9 mc;
      Alcotest.(check bool) "valid" true (C.is_valid_graph g ~w starts);
      Alcotest.(check int) "matches exact" (exact_graph g w) mc

let test_bipartite_rejects_odd_cycle () =
  Alcotest.(check bool) "C5 refused" true
    (Sp.color_bipartite (B.cycle 5) ~w:[| 1; 1; 1; 1; 1 |] = None)

let test_bipartite_isolated_heavy () =
  (* isolated vertex heavier than any edge: maxcolor must cover it *)
  let g = Ivc_graph.Csr.of_edges 3 [ (0, 1) ] in
  let w = [| 1; 1; 9 |] in
  match Sp.color_bipartite g ~w with
  | None -> Alcotest.fail "forest is bipartite"
  | Some (starts, mc) ->
      Alcotest.(check int) "covers the heavy vertex" 9 mc;
      Alcotest.(check bool) "valid" true (C.is_valid_graph g ~w starts)

let test_chain () =
  let w = [| 2; 5; 1; 4; 3 |] in
  let starts, mc = Sp.color_chain w in
  Alcotest.(check int) "max adjacent pair" 7 mc;
  Alcotest.(check bool) "valid on path" true
    (C.is_valid_graph (B.path 5) ~w starts);
  Alcotest.(check int) "matches exact" (exact_graph (B.path 5) w) mc;
  (* singleton chain *)
  let s1, m1 = Sp.color_chain [| 6 |] in
  Alcotest.(check int) "singleton colors" 6 m1;
  Alcotest.(check int) "singleton start" 0 s1.(0)

let test_maxpair_minchain3 () =
  let w = [| 10; 5; 5; 10; 5 |] in
  Alcotest.(check int) "maxpair" 15 (Sp.maxpair w);
  Alcotest.(check int) "minchain3 wraps" 20 (Sp.minchain3 w);
  Alcotest.(check int) "pair wraps" 15 (Sp.maxpair [| 10; 1; 1; 1; 5 |])

let test_odd_cycle_theorem_fixed () =
  (* a Figure-2-like instance: maxpair 25, minchain3 30 -> optimum 30,
     strictly above the heaviest clique (pair) of 25 *)
  let w = [| 10; 10; 10; 10; 10; 10; 10; 10; 15 |] in
  let starts, mc = Sp.color_odd_cycle w in
  Alcotest.(check int) "maxpair" 25 (Sp.maxpair w);
  Alcotest.(check int) "minchain3" 30 (Sp.minchain3 w);
  Alcotest.(check int) "theorem value" 30 mc;
  Alcotest.(check bool) "valid on C9" true
    (C.is_valid_graph (B.cycle 9) ~w starts);
  Alcotest.(check int) "matches exact" (exact_graph (B.cycle 9) w) mc

let test_even_cycle () =
  let w = [| 3; 4; 2; 6; 1; 5 |] in
  let starts, mc = Sp.color_even_cycle w in
  Alcotest.(check bool) "valid on C6" true
    (C.is_valid_graph (B.cycle 6) ~w starts);
  Alcotest.(check int) "matches exact" (exact_graph (B.cycle 6) w) mc

let test_rejects_parity () =
  Alcotest.check_raises "even to odd colorer"
    (Invalid_argument "Special.color_odd_cycle: need odd length >= 3") (fun () ->
      ignore (Sp.color_odd_cycle [| 1; 1; 1; 1 |]));
  Alcotest.check_raises "odd to even colorer"
    (Invalid_argument "Special.color_even_cycle: need even length >= 4")
    (fun () -> ignore (Sp.color_even_cycle [| 1; 1; 1 |]))

let test_relaxation () =
  let inst = Util.random_inst2 ~seed:11 ~x:4 ~y:5 ~bound:9 in
  let starts, mc = Sp.color_relaxation inst in
  (* valid on the 5-pt relaxed graph (not necessarily on the 9-pt) *)
  Alcotest.(check bool) "valid on 5-pt" true
    (C.is_valid_graph (S.relaxed_graph inst) ~w:(inst : S.t).w starts);
  (* optimal for the relaxation: equals the exact optimum of the 5-pt graph *)
  Alcotest.(check int) "optimal for relaxation"
    (exact_graph (S.relaxed_graph inst) (inst : S.t).w)
    mc

let test_relaxation_3d () =
  let inst = Util.random_inst3 ~seed:5 ~x:3 ~y:2 ~z:3 ~bound:7 in
  let starts, mc = Sp.color_relaxation inst in
  Alcotest.(check bool) "valid on 7-pt" true
    (C.is_valid_graph (S.relaxed_graph inst) ~w:(inst : S.t).w starts);
  Alcotest.(check int) "optimal for relaxation"
    (exact_graph (S.relaxed_graph inst) (inst : S.t).w)
    mc

(* Theorem 1 checked against brute force on random odd cycles. *)
let prop_odd_cycle_theorem =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"odd cycle theorem vs exact" ~count:60
       ~print:(fun w ->
         String.concat ";" (List.map string_of_int (Array.to_list w)))
       QCheck2.Gen.(
         let* k = int_range 1 3 in
         array_size (pure ((2 * k) + 3)) (int_range 1 8))
       (fun w ->
         let n = Array.length w in
         let starts, mc = Sp.color_odd_cycle w in
         C.is_valid_graph (B.cycle n) ~w starts
         && mc = exact_graph (B.cycle n) w))

let suite =
  [
    Alcotest.test_case "clique optimal" `Quick test_clique;
    Alcotest.test_case "complete bipartite optimal" `Quick test_bipartite_complete;
    Alcotest.test_case "bipartite rejects odd cycles" `Quick test_bipartite_rejects_odd_cycle;
    Alcotest.test_case "isolated heavy vertex" `Quick test_bipartite_isolated_heavy;
    Alcotest.test_case "chain optimal" `Quick test_chain;
    Alcotest.test_case "maxpair / minchain3" `Quick test_maxpair_minchain3;
    Alcotest.test_case "odd cycle theorem (Fig 2 values)" `Quick test_odd_cycle_theorem_fixed;
    Alcotest.test_case "even cycle optimal" `Quick test_even_cycle;
    Alcotest.test_case "parity validation" `Quick test_rejects_parity;
    Alcotest.test_case "5-pt relaxation optimal" `Quick test_relaxation;
    Alcotest.test_case "7-pt relaxation optimal" `Quick test_relaxation_3d;
    prop_odd_cycle_theorem;
  ]
