(* Out-of-core tiled solves and the work-stealing executor.

   The differential core is the shared [ooc] oracle (bit-identical to
   the in-core tiled sweep, certified streaming verify, full resume),
   applied here to qcheck-generated and handcrafted ragged grids.
   On top of that: crash recovery (a kill -9 leaves an arbitrary valid
   subset of spill files; resuming from any subset must match an
   uninterrupted solve), fail-closed spill validation (truncation,
   corruption, wrong source), the memory-budget ceiling, and unit
   coverage of the Chase-Lev deque and the phase executor. *)

module S = Ivc_grid.Stencil
module Tiles = Ivc_kernel.Tiles
module Par = Ivc_kernel.Par_sweep
module Ooc = Ivc_ooc.Ooc
module Src = Ivc_ooc.Source
module Wsdeque = Taskpar.Wsdeque
module Steal = Taskpar.Steal
module O = Ivc_check.Oracles

let prop_ooc_matches inst = Util.oracle_holds O.ooc inst

(* Fresh spill directory per test, removed with its contents. *)
let with_dir f =
  let dir = Filename.temp_file "ivc-test-ooc" ".spill" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let solve_ok ?tile ?mem_budget ~dir src =
  match Ooc.solve ?tile ?mem_budget ~dir src with
  | Ok st -> st
  | Error e -> Alcotest.failf "ooc solve: %s" (Ooc.error_to_string e)

let starts_ok ?tile ~dir src =
  match Ooc.read_starts ?tile ~dir src with
  | Ok s -> s
  | Error e -> Alcotest.failf "read_starts: %s" (Ooc.error_to_string e)

let check_same_starts what expected got =
  if got <> expected then begin
    let v = ref 0 in
    while got.(!v) = expected.(!v) do incr v done;
    Alcotest.failf "%s: vertex %d got %d, expected %d" what !v got.(!v)
      expected.(!v)
  end

(* Handcrafted ragged shapes: non-square, non-power-of-two, ribbons,
   and extents not divisible by the tile edge, across tile sizes. *)
let test_ragged_differential () =
  let insts =
    [
      Util.random_inst2 ~seed:21 ~x:13 ~y:7 ~bound:9;
      Util.random_inst2 ~seed:22 ~x:1 ~y:40 ~bound:6;
      Util.random_inst2 ~seed:23 ~x:40 ~y:1 ~bound:6;
      Util.random_inst3 ~seed:24 ~x:5 ~y:3 ~z:7 ~bound:8;
      Util.random_inst3 ~seed:25 ~x:1 ~y:1 ~z:9 ~bound:30;
      S.init2 ~x:17 ~y:17 (fun _ _ -> 0);
    ]
  in
  List.iter
    (fun inst ->
      List.iter
        (fun tile ->
          with_dir @@ fun dir ->
          let src = Src.of_stencil inst in
          ignore (solve_ok ?tile ~dir src);
          check_same_starts
            (Printf.sprintf "tile %s"
               (match tile with Some t -> string_of_int t | None -> "default"))
            (Tiles.color ?tile inst)
            (starts_ok ?tile ~dir src))
        [ Some 2; Some 3; Some 5; None ])
    insts

(* A kill -9 mid-solve leaves some subset of the spill files (in
   reality a traversal-order prefix; any subset is strictly more
   adversarial). Resuming from every such wreckage must reproduce the
   uninterrupted solve exactly, recomputing precisely the missing
   tiles. *)
let test_kill_resume_matches () =
  let inst = Util.random_inst2 ~seed:31 ~x:14 ~y:10 ~bound:12 in
  let src = Src.of_stencil inst in
  let tile = 4 in
  with_dir @@ fun dir ->
  let st = solve_ok ~tile ~dir src in
  let expected = starts_ok ~tile ~dir src in
  let rng = Spatial_data.Rng.create 404 in
  for trial = 1 to 6 do
    (* wreck: delete each spill independently with probability 1/2 *)
    let deleted = ref 0 in
    for t = 0 to st.Ooc.tiles - 1 do
      if Spatial_data.Rng.int rng 2 = 0 then begin
        Sys.remove (Ooc.spill_file ~dir t);
        incr deleted
      end
    done;
    let st' = solve_ok ~tile ~dir src in
    Alcotest.(check int)
      (Printf.sprintf "trial %d: recomputes exactly the deleted tiles" trial)
      !deleted st'.Ooc.solved;
    Alcotest.(check int)
      (Printf.sprintf "trial %d: resumes the survivors" trial)
      (st.Ooc.tiles - !deleted)
      st'.Ooc.resumed;
    Alcotest.(check int)
      (Printf.sprintf "trial %d: maxcolor survives" trial)
      st.Ooc.maxcolor st'.Ooc.maxcolor;
    check_same_starts
      (Printf.sprintf "trial %d: resumed = uninterrupted" trial)
      expected (starts_ok ~tile ~dir src)
  done

(* Damaged spills must be detected and recomputed, never trusted:
   truncation, bit flips in the payload, and plain garbage all fail
   the CRC/fingerprint gate closed. *)
let test_corrupt_spill_fail_closed () =
  let inst = Util.random_inst3 ~seed:32 ~x:6 ~y:5 ~z:4 ~bound:7 in
  let src = Src.of_stencil inst in
  let tile = 2 in
  with_dir @@ fun dir ->
  let st = solve_ok ~tile ~dir src in
  let expected = starts_ok ~tile ~dir src in
  let damage t f =
    let path = Ooc.spill_file ~dir t in
    let data = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (f data))
  in
  damage 0 (fun d -> String.sub d 0 (String.length d / 2));
  damage 1 (fun d ->
      let b = Bytes.of_string d in
      Bytes.set b (Bytes.length b / 2)
        (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0x40));
      Bytes.to_string b);
  damage 2 (fun _ -> "not a snapshot at all");
  let st' = solve_ok ~tile ~dir src in
  Alcotest.(check int) "three tiles recomputed" 3 st'.Ooc.solved;
  Alcotest.(check int) "the rest resumed" (st.Ooc.tiles - 3) st'.Ooc.resumed;
  check_same_starts "repaired solve = original" expected
    (starts_ok ~tile ~dir src)

(* Spills carry the source fingerprint: a directory full of some other
   instance's tiles must be recomputed wholesale, and the foreign
   spills must not leak into the result. *)
let test_fingerprint_mismatch_rejected () =
  let inst_a = Util.random_inst2 ~seed:33 ~x:12 ~y:9 ~bound:10 in
  let inst_b = Util.random_inst2 ~seed:34 ~x:12 ~y:9 ~bound:10 in
  let tile = 3 in
  with_dir @@ fun dir ->
  ignore (solve_ok ~tile ~dir (Src.of_stencil inst_a));
  let st = solve_ok ~tile ~dir (Src.of_stencil inst_b) in
  Alcotest.(check int) "no foreign tile resumed" 0 st.Ooc.resumed;
  check_same_starts "solve over foreign spills = in-core"
    (Tiles.color ~tile inst_b)
    (starts_ok ~tile ~dir (Src.of_stencil inst_b))

(* The halo cache respects its byte budget: with the budget floored,
   the resident high-water is the floor cap (2 tiles) plus the active
   window, regardless of grid size — and the coloring is unaffected. *)
let test_mem_budget_ceiling () =
  let inst = Util.random_inst2 ~seed:35 ~x:24 ~y:24 ~bound:8 in
  let src = Src.of_stencil inst in
  let tile = 4 in
  with_dir @@ fun dir ->
  let st = solve_ok ~tile ~mem_budget:0 ~dir src in
  Alcotest.(check bool)
    (Printf.sprintf "resident high-water %d <= 3 tiles" st.Ooc.resident_hw)
    true (st.Ooc.resident_hw <= 3);
  Alcotest.(check bool) "cache misses happened" true (st.Ooc.halo_loads > 0);
  check_same_starts "starved cache still exact" (Tiles.color ~tile inst)
    (starts_ok ~tile ~dir src)

(* Seeded counter-mode sources: deterministic, in range, and their
   materialization agrees with the pure weight function. *)
let test_seeded_sources () =
  let src = Src.seeded2 ~x:9 ~y:7 ~seed:42 ~bound:13 in
  Alcotest.(check int) "n_vertices" 63 (Src.n_vertices src);
  let m = Src.materialize src in
  for id = 0 to 62 do
    let w = Src.weight src id in
    Alcotest.(check bool) "in range" true (w >= 0 && w < 13);
    Alcotest.(check int) "materialize agrees" w (m : S.t).w.(id);
    Alcotest.(check int) "deterministic" w (Src.weight src id)
  done;
  let other = Src.seeded2 ~x:9 ~y:7 ~seed:43 ~bound:13 in
  Alcotest.(check bool) "seed changes the fingerprint" true
    (Src.fingerprint src <> Src.fingerprint other);
  let src3 = Src.seeded3 ~x:4 ~y:3 ~z:5 ~seed:42 ~bound:9 in
  Alcotest.(check bool) "2D/3D fingerprints are distinct" true
    (Src.fingerprint src3 <> Src.fingerprint src);
  (* the seeded solve itself is exact w.r.t. its materialization *)
  with_dir @@ fun dir ->
  ignore (solve_ok ~tile:3 ~dir src);
  check_same_starts "seeded source ooc = in-core" (Tiles.color ~tile:3 m)
    (starts_ok ~tile:3 ~dir src)

(* ---- work-stealing executor ---------------------------------------------- *)

let test_wsdeque_lifo_fifo () =
  let q = Wsdeque.create 8 in
  Alcotest.(check int) "capacity" 8 (Wsdeque.capacity q);
  Alcotest.(check bool) "pop on empty" true (Wsdeque.pop q = None);
  Alcotest.(check bool) "steal on empty" true (Wsdeque.steal q = Wsdeque.Empty);
  for i = 1 to 4 do
    Wsdeque.push q i
  done;
  Alcotest.(check int) "size" 4 (Wsdeque.size q);
  (* owner pops newest first *)
  Alcotest.(check bool) "pop LIFO" true (Wsdeque.pop q = Some 4);
  (* thief steals oldest first *)
  Alcotest.(check bool) "steal FIFO" true (Wsdeque.steal q = Wsdeque.Stolen 1);
  Alcotest.(check bool) "steal FIFO next" true
    (Wsdeque.steal q = Wsdeque.Stolen 2);
  Alcotest.(check bool) "pop meets steal" true (Wsdeque.pop q = Some 3);
  Alcotest.(check bool) "drained" true (Wsdeque.pop q = None);
  Wsdeque.push q 9;
  Wsdeque.reset q;
  Alcotest.(check bool) "reset empties" true (Wsdeque.pop q = None);
  let full = Wsdeque.create 2 in
  Wsdeque.push full 1;
  Wsdeque.push full 2;
  Alcotest.(check bool) "push past capacity raises" true
    (match Wsdeque.push full 3 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* One owner + concurrent thieves over a known task set: every task is
   executed exactly once across pop and steal, nothing invented. *)
let test_wsdeque_concurrent_steal () =
  let n = 2000 in
  let q = Wsdeque.create n in
  let seen = Array.make n (-1) in
  let mark who t =
    if seen.(t) <> -1 then
      Alcotest.failf "task %d taken twice (by %d and %d)" t seen.(t) who
    else seen.(t) <- who
  in
  let stop = Atomic.make false in
  let thief id () =
    let got = ref 0 in
    while not (Atomic.get stop) do
      match Wsdeque.steal q with
      | Wsdeque.Stolen t ->
          mark id t;
          incr got
      | Wsdeque.Empty | Wsdeque.Retry -> Domain.cpu_relax ()
    done;
    !got
  in
  let thieves = List.init 2 (fun i -> Domain.spawn (thief (i + 1))) in
  for t = 0 to n - 1 do
    Wsdeque.push q t;
    if t land 3 = 0 then
      match Wsdeque.pop q with Some t' -> mark 0 t' | None -> ()
  done;
  let rec drain () =
    match Wsdeque.pop q with
    | Some t ->
        mark 0 t;
        drain ()
    | None -> if Wsdeque.size q > 0 then drain ()
  in
  drain ();
  Atomic.set stop true;
  let stolen = List.fold_left (fun a d -> a + Domain.join d) 0 thieves in
  Alcotest.(check bool) "all tasks executed exactly once" true
    (Array.for_all (fun w -> w >= 0) seen);
  Alcotest.(check bool) "steal count consistent" true
    (stolen >= 0 && stolen <= n)

(* Phase barrier: with several workers, every task of phase p runs
   before any task of phase p+1, each task exactly once. *)
let test_steal_phase_barrier () =
  let counts = [| 7; 1; 13; 0; 5 |] in
  let total = Array.fold_left ( + ) 0 counts in
  let done_in = Array.map (fun c -> Array.make c 0) counts in
  let finished = Array.map (fun _ -> Atomic.make 0) counts in
  let errors = Atomic.make [] in
  let work ~worker:_ ~phase t =
    for p = 0 to phase - 1 do
      if Atomic.get finished.(p) <> counts.(p) then
        Atomic.set errors
          (Printf.sprintf "phase %d task %d ran before phase %d drained"
             phase t p
          :: Atomic.get errors)
    done;
    done_in.(phase).(t) <- done_in.(phase).(t) + 1;
    Atomic.incr finished.(phase)
  in
  List.iter
    (fun workers ->
      Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) done_in;
      Array.iter (fun f -> Atomic.set f 0) finished;
      Atomic.set errors [];
      let stats = Steal.run_phases ~workers ~counts ~work in
      (match Atomic.get errors with
      | [] -> ()
      | e :: _ -> Alcotest.failf "workers %d: %s" workers e);
      Alcotest.(check int)
        (Printf.sprintf "workers %d: all tasks ran" workers)
        total stats.Steal.tasks;
      Array.iteri
        (fun p per ->
          Array.iteri
            (fun t c ->
              if c <> 1 then
                Alcotest.failf "workers %d: phase %d task %d ran %d times"
                  workers p t c)
            per)
        done_in)
    [ 1; 2; Util.workers () ]

let test_steal_exception_propagates () =
  let ran = Atomic.make 0 in
  let boom ~worker:_ ~phase:_ t =
    Atomic.incr ran;
    if t = 3 then failwith "task 3 exploded"
  in
  List.iter
    (fun workers ->
      Atomic.set ran 0;
      (match Steal.run_phases ~workers ~counts:[| 6 |] ~work:boom with
      | _ -> Alcotest.failf "workers %d: exception swallowed" workers
      | exception Failure m ->
          Alcotest.(check string) "first exception surfaces" "task 3 exploded" m);
      (* the phase still drains: every task ran despite the failure *)
      Alcotest.(check int)
        (Printf.sprintf "workers %d: phase drained" workers)
        6 (Atomic.get ran))
    [ 1; 2 ]

(* The work-stealing sweep is deterministic across every worker count:
   all of them reproduce the sequential reference on equivalent_order,
   beyond the 1-2 workers the par-diff oracle covers. *)
let test_par_sweep_every_worker_count () =
  List.iter
    (fun inst ->
      let order = Par.equivalent_order ~tile:2 inst in
      let expected = Ivc.Greedy.Reference.color_in_order inst order in
      List.iter
        (fun workers ->
          let starts, stats = Par.color ~workers ~tile:2 inst in
          check_same_starts
            (Printf.sprintf "workers %d" workers)
            expected starts;
          Alcotest.(check int)
            (Printf.sprintf "workers %d: interior + seam = n" workers)
            (S.n_vertices inst)
            (stats.Par.interior + stats.Par.seam))
        [ 1; 2; 3; 4; 5 ])
    [
      Util.random_inst2 ~seed:41 ~x:11 ~y:9 ~bound:10;
      Util.random_inst3 ~seed:42 ~x:5 ~y:4 ~z:3 ~bound:6;
    ]

let suite =
  [
    Alcotest.test_case "ragged grids differential" `Quick
      test_ragged_differential;
    Alcotest.test_case "kill -9 wreckage resumes exactly" `Quick
      test_kill_resume_matches;
    Alcotest.test_case "corrupt spills fail closed" `Quick
      test_corrupt_spill_fail_closed;
    Alcotest.test_case "foreign fingerprints rejected" `Quick
      test_fingerprint_mismatch_rejected;
    Alcotest.test_case "memory budget ceiling" `Quick test_mem_budget_ceiling;
    Alcotest.test_case "seeded sources" `Quick test_seeded_sources;
    Alcotest.test_case "wsdeque LIFO/FIFO semantics" `Quick
      test_wsdeque_lifo_fifo;
    Alcotest.test_case "wsdeque concurrent steals" `Quick
      test_wsdeque_concurrent_steal;
    Alcotest.test_case "steal phase barrier" `Quick test_steal_phase_barrier;
    Alcotest.test_case "steal exception propagation" `Quick
      test_steal_exception_propagates;
    Alcotest.test_case "par sweep at every worker count" `Quick
      test_par_sweep_every_worker_count;
    Util.qtest ~count:40 "ooc oracle (2D)" Util.gen_inst2 prop_ooc_matches;
    Util.qtest ~count:25 "ooc oracle (3D)" Util.gen_inst3 prop_ooc_matches;
  ]
