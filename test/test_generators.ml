module S = Ivc_grid.Stencil
module G = Spatial_data.Generators

let test_all_well_formed () =
  List.iter
    (fun (name, inst) ->
      Alcotest.(check int) (name ^ " size") 144 (S.n_vertices inst);
      Alcotest.(check bool) (name ^ " non-negative") true
        (Array.for_all (fun w -> w >= 0) (inst : S.t).w))
    (G.all_2d ~seed:1 ~x:12 ~y:12)

let test_determinism () =
  let a = G.uniform ~seed:5 ~bound:50 ~x:8 ~y:8 in
  let b = G.uniform ~seed:5 ~bound:50 ~x:8 ~y:8 in
  Alcotest.(check (array int)) "same seed" (a : S.t).w (b : S.t).w;
  let c = G.uniform ~seed:6 ~bound:50 ~x:8 ~y:8 in
  Alcotest.(check bool) "different seed" true ((a : S.t).w <> (c : S.t).w)

let test_smooth_is_smooth () =
  let inst = G.smooth ~seed:2 ~amplitude:100 ~x:16 ~y:16 in
  (* neighboring cells never differ by a large fraction of the range *)
  let max_jump = ref 0 in
  for v = 0 to S.n_vertices inst - 1 do
    S.iter_neighbors inst v (fun u ->
        max_jump := max !max_jump (abs (S.weight inst u - S.weight inst v)))
  done;
  Alcotest.(check bool) "small local variation" true (!max_jump < 40)

let test_sparse_sparsity () =
  let inst = G.sparse ~seed:3 ~sparsity:0.7 ~bound:9 ~x:20 ~y:20 in
  let s = Spatial_data.Gridding.sparsity inst in
  Alcotest.(check bool) "about 70% zeros" true (s > 0.6 && s < 0.8)

let test_bd_adversarial_structure () =
  let inst = G.bd_adversarial ~amplitude:50 ~x:8 ~y:8 in
  (* heavy cells only on even (i, j) parities *)
  for v = 0 to S.n_vertices inst - 1 do
    let i, j = S.coord2 inst v in
    let w = S.weight inst v in
    if i mod 2 = 0 && j mod 2 = 0 then
      Alcotest.(check int) "heavy" 50 w
    else Alcotest.(check int) "light" 1 w
  done

let test_zipf_has_heavy_tail () =
  let inst = G.zipf ~seed:4 ~bound:500 ~x:24 ~y:24 in
  let w = (inst : S.t).w in
  let big = Array.fold_left max 0 w in
  let med =
    let copy = Array.copy w in
    Array.sort compare copy;
    copy.(Array.length copy / 2)
  in
  Alcotest.(check bool) "max dwarfs median" true (big > 10 * max 1 med)

let test_3d_variants () =
  let u = G.uniform3 ~seed:7 ~bound:9 ~x:3 ~y:4 ~z:5 in
  Alcotest.(check int) "3d size" 60 (S.n_vertices u);
  let s = G.sparse3 ~seed:8 ~sparsity:0.5 ~bound:9 ~x:4 ~y:4 ~z:4 in
  Alcotest.(check bool) "3d sparse has zeros" true
    (Spatial_data.Gridding.sparsity s > 0.2)

let test_heuristics_on_generators () =
  (* the whole point: every generator produces colorable instances *)
  List.iter
    (fun (name, inst) ->
      List.iter
        (fun (aname, starts, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s valid" aname name)
            true
            (Ivc.Coloring.is_valid inst starts))
        (Ivc.Algo.run_all inst))
    (G.all_2d ~seed:9 ~x:10 ~y:10)

let suite =
  [
    Alcotest.test_case "all well-formed" `Quick test_all_well_formed;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "smooth is smooth" `Quick test_smooth_is_smooth;
    Alcotest.test_case "sparse sparsity" `Quick test_sparse_sparsity;
    Alcotest.test_case "bd adversarial structure" `Quick test_bd_adversarial_structure;
    Alcotest.test_case "zipf heavy tail" `Quick test_zipf_has_heavy_tail;
    Alcotest.test_case "3d variants" `Quick test_3d_variants;
    Alcotest.test_case "heuristics on generators" `Quick test_heuristics_on_generators;
  ]
