module S = Ivc_grid.Stencil
module C = Ivc.Compaction

(* a deliberately wasteful valid coloring: stack everything *)
let stacked inst =
  let starts, _ = Ivc.Special.color_clique ~w:(inst : S.t).w in
  starts

let test_compact_improves_stacked () =
  let inst = Util.random_inst2 ~seed:61 ~x:5 ~y:5 ~bound:9 in
  let before = stacked inst in
  let after = C.compact inst before in
  Util.check_valid inst after;
  Alcotest.(check bool) "maxcolor improves" true
    (Util.maxcolor inst after <= Util.maxcolor inst before);
  Alcotest.(check bool) "result is compact" true (C.is_compact inst after)

let test_compact_pointwise () =
  let inst = Util.random_inst2 ~seed:62 ~x:6 ~y:4 ~bound:9 in
  let before = (Ivc.Bipartite_decomp.bd inst).Ivc.Bipartite_decomp.starts in
  let after = C.compact inst before in
  for v = 0 to S.n_vertices inst - 1 do
    Alcotest.(check bool) "no start increases" true (after.(v) <= before.(v))
  done

let test_slide_fixpoint_agrees_on_maxcolor_bound () =
  let inst = Util.random_inst2 ~seed:63 ~x:5 ~y:5 ~bound:9 in
  let before = stacked inst in
  let slid = C.slide_fixpoint inst before in
  Util.check_valid inst slid;
  Alcotest.(check bool) "fixpoint has no slack" true (C.is_compact inst slid);
  Alcotest.(check int) "slack is zero" 0 (C.slack inst slid)

let test_slack_measures_waste () =
  let inst = S.make2 ~x:2 ~y:2 [| 2; 2; 2; 2 |] in
  (* valid but wasteful: gaps of one color between the stacked intervals *)
  let wasteful = [| 0; 3; 6; 9 |] in
  Util.check_valid inst wasteful;
  Alcotest.(check int) "three gaps of one" 3 (C.slack inst wasteful);
  let tight = [| 0; 2; 4; 6 |] in
  Alcotest.(check int) "tight has none" 0 (C.slack inst tight)

let test_compact_idempotent () =
  let inst = Util.random_inst2 ~seed:64 ~x:6 ~y:6 ~bound:12 in
  let once = C.compact inst (stacked inst) in
  let twice = C.compact inst once in
  Alcotest.(check int) "maxcolor stable" (Util.maxcolor inst once)
    (Util.maxcolor inst twice)

let test_zero_weights_go_to_zero () =
  let inst = S.make2 ~x:2 ~y:2 [| 0; 5; 0; 5 |] in
  let slid = C.slide_fixpoint inst [| 7; 0; 9; 5 |] in
  Alcotest.(check int) "zero vertex at 0" 0 slid.(0);
  Alcotest.(check int) "other zero vertex at 0" 0 slid.(2)

let prop_compact_valid_and_no_worse =
  Util.qtest ~count:60 "compact is valid and never worse" Util.gen_inst2
    (fun inst ->
      (* start from the GLL coloring shifted up by 3 (still valid) *)
      let base = Array.map (fun s -> s + 3) (Ivc.Heuristics.gll inst) in
      let after = C.compact inst base in
      Ivc.Coloring.is_valid inst after
      && Util.maxcolor inst after <= Util.maxcolor inst base
      && C.is_compact inst after)

let prop_slide_equals_slack_zero =
  Util.qtest ~count:40 "slide fixpoint has zero slack" Util.gen_inst2
    (fun inst ->
      let base = Array.map (fun s -> s + 2) (Ivc.Heuristics.glf inst) in
      let slid = C.slide_fixpoint inst base in
      Ivc.Coloring.is_valid inst slid && C.slack inst slid = 0)

let suite =
  [
    Alcotest.test_case "compact improves stacked" `Quick test_compact_improves_stacked;
    Alcotest.test_case "compact pointwise" `Quick test_compact_pointwise;
    Alcotest.test_case "slide fixpoint" `Quick test_slide_fixpoint_agrees_on_maxcolor_bound;
    Alcotest.test_case "slack measures waste" `Quick test_slack_measures_waste;
    Alcotest.test_case "compact idempotent" `Quick test_compact_idempotent;
    Alcotest.test_case "zero weights slide to zero" `Quick test_zero_weights_go_to_zero;
    prop_compact_valid_and_no_worse;
    prop_slide_equals_slack_zero;
  ]
