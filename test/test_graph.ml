module Csr = Ivc_graph.Csr
module B = Ivc_graph.Builders
module T = Ivc_graph.Traversal
module Cy = Ivc_graph.Cycles

let test_of_edges_basics () =
  let g = Csr.of_edges 4 [ (0, 1); (1, 2); (2, 0); (1, 2) ] in
  Alcotest.(check int) "vertices" 4 (Csr.n_vertices g);
  Alcotest.(check int) "edges deduplicated" 3 (Csr.n_edges g);
  Alcotest.(check int) "degree 1" 2 (Csr.degree g 1);
  Alcotest.(check int) "degree isolated" 0 (Csr.degree g 3);
  Alcotest.(check int) "max degree" 2 (Csr.max_degree g);
  Alcotest.(check bool) "mem_edge" true (Csr.mem_edge g 2 0);
  Alcotest.(check bool) "mem_edge reverse" true (Csr.mem_edge g 0 2);
  Alcotest.(check bool) "not mem_edge" false (Csr.mem_edge g 0 3)

let test_of_edges_rejects () =
  Alcotest.check_raises "self loop" (Invalid_argument "Csr.of_edges: self-loop")
    (fun () -> ignore (Csr.of_edges 2 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Csr.of_edges: vertex 5 out of [0,3)") (fun () ->
      ignore (Csr.of_edges 3 [ (0, 5) ]))

let test_neighbors_sorted () =
  let g = Csr.of_edges 5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Csr.neighbors g 2)

let test_builders_counts () =
  let checks =
    [
      ("path 5", B.path 5, 5, 4);
      ("cycle 5", B.cycle 5, 5, 5);
      ("clique 5", B.clique 5, 5, 10);
      ("K_{2,3}", B.complete_bipartite 2 3, 5, 6);
      ("star 4", B.star 4, 5, 4);
      ("5-pt 3x4", B.five_pt 3 4, 12, 17);
      ("9-pt 3x4", B.stencil2 3 4, 12, 29);
      ("7-pt 2x2x2", B.seven_pt 2 2 2, 8, 12);
      ("27-pt 2x2x2", B.stencil3 2 2 2, 8, 28);
    ]
  in
  List.iter
    (fun (name, g, n, m) ->
      Alcotest.(check int) (name ^ " vertices") n (Csr.n_vertices g);
      Alcotest.(check int) (name ^ " edges") m (Csr.n_edges g))
    checks

let test_stencil2_degrees () =
  let g = B.stencil2 4 5 in
  (* corner 3, edge 5, interior 8 *)
  Alcotest.(check int) "corner" 3 (Csr.degree g 0);
  Alcotest.(check int) "edge" 5 (Csr.degree g 1);
  Alcotest.(check int) "interior" 8 (Csr.degree g 6)

let test_stencil3_degrees () =
  let g = B.stencil3 3 3 3 in
  let id i j k = (((i * 3) + j) * 3) + k in
  Alcotest.(check int) "corner" 7 (Csr.degree g (id 0 0 0));
  Alcotest.(check int) "edge" 11 (Csr.degree g (id 0 0 1));
  Alcotest.(check int) "face" 17 (Csr.degree g (id 0 1 1));
  Alcotest.(check int) "center" 26 (Csr.degree g (id 1 1 1))

let test_bfs () =
  let g = B.path 5 in
  Alcotest.(check (array int)) "distances" [| 2; 1; 0; 1; 2 |] (T.bfs g 2);
  let g2 = Csr.of_edges 4 [ (0, 1) ] in
  Alcotest.(check (array int)) "unreachable" [| 0; 1; -1; -1 |] (T.bfs g2 0)

let test_components () =
  let g = Csr.of_edges 6 [ (0, 1); (2, 3); (3, 4) ] in
  let count, comp = T.components g in
  Alcotest.(check int) "count" 3 count;
  Alcotest.(check bool) "same comp" true (comp.(2) = comp.(4));
  Alcotest.(check bool) "diff comp" true (comp.(0) <> comp.(2))

let test_bipartition () =
  Alcotest.(check bool) "path bipartite" true (T.is_bipartite (B.path 6));
  Alcotest.(check bool) "even cycle bipartite" true (T.is_bipartite (B.cycle 6));
  Alcotest.(check bool) "odd cycle not" false (T.is_bipartite (B.cycle 5));
  Alcotest.(check bool) "5-pt bipartite" true (T.is_bipartite (B.five_pt 5 7));
  Alcotest.(check bool) "7-pt bipartite" true (T.is_bipartite (B.seven_pt 3 4 2));
  Alcotest.(check bool) "9-pt not bipartite" false (T.is_bipartite (B.stencil2 3 3));
  Alcotest.(check bool) "27-pt not bipartite" false (T.is_bipartite (B.stencil3 2 2 2));
  match T.bipartition (B.cycle 6) with
  | None -> Alcotest.fail "expected a bipartition"
  | Some side ->
      Ivc_graph.Csr.iter_edges (B.cycle 6) (fun u v ->
          Alcotest.(check bool) "proper" true (side.(u) <> side.(v)))

let test_odd_cycle_extraction () =
  List.iter
    (fun g ->
      match T.odd_cycle g with
      | None -> Alcotest.fail "expected an odd cycle"
      | Some c ->
          Alcotest.(check bool) "odd length >= 3" true
            (List.length c >= 3 && List.length c mod 2 = 1);
          let arr = Array.of_list c in
          let n = Array.length arr in
          for i = 0 to n - 1 do
            Alcotest.(check bool) "consecutive adjacency" true
              (Csr.mem_edge g arr.(i) arr.((i + 1) mod n))
          done)
    [ B.cycle 5; B.cycle 9; B.stencil2 3 3; B.clique 4 ]

let test_cycle_enumeration () =
  (* triangle: exactly one cycle *)
  Alcotest.(check int) "K3" 1 (Cy.count_cycles (B.clique 3) ~max_len:5);
  (* K4: 4 triangles + 3 squares = 7 *)
  Alcotest.(check int) "K4" 7 (Cy.count_cycles (B.clique 4) ~max_len:5);
  (* C5: one cycle *)
  Alcotest.(check int) "C5" 1 (Cy.count_cycles (B.cycle 5) ~max_len:5);
  (* length cap respected *)
  Alcotest.(check int) "C5 capped" 0 (Cy.count_cycles (B.cycle 5) ~max_len:4)

let test_triangles () =
  let count g =
    let c = ref 0 in
    Cy.triangles g (fun _ _ _ -> incr c);
    !c
  in
  Alcotest.(check int) "K4 triangles" 4 (count (B.clique 4));
  (* 2x2 9-pt block is a K4 *)
  Alcotest.(check int) "2x2 stencil" 4 (count (B.stencil2 2 2));
  Alcotest.(check int) "path has none" 0 (count (B.path 6))

let test_odd_cycles_only () =
  let lens = ref [] in
  Cy.iter_odd_cycles (B.clique 4) ~max_len:6 (fun c ->
      lens := Array.length c :: !lens);
  Alcotest.(check (list int)) "only triangles" [ 3; 3; 3; 3 ]
    (List.sort compare !lens)

let test_induced () =
  let g = B.stencil2 3 3 in
  let sub, back = Csr.induced g (fun v -> v <> 4) in
  (* dropping the center of a 3x3 stencil leaves the 8-ring *)
  Alcotest.(check int) "vertices" 8 (Csr.n_vertices sub);
  Alcotest.(check int) "edges" 12 (Csr.n_edges sub);
  Alcotest.(check int) "mapping length" 8 (Array.length back);
  Alcotest.(check bool) "center dropped" true
    (Array.for_all (fun v -> v <> 4) back)

(* Differential property for the counting-sort of_edges build: agree
   with the obvious model (normalize, sort_uniq) on degrees, sorted
   adjacency slices and edge recovery, for arbitrary duplicated and
   reversed edge lists. *)
let gen_edge_list =
  QCheck2.Gen.(
    let* n = int_range 2 12 in
    let* m = int_range 0 40 in
    let* edges =
      list_size (pure m)
        (let* u = int_range 0 (n - 1) in
         let* v = int_range 0 (n - 1) in
         pure (u, v))
    in
    pure (n, List.filter (fun (u, v) -> u <> v) edges))

let prop_of_edges_matches_model (n, edges) =
  let g = Csr.of_edges n edges in
  let model =
    List.sort_uniq compare
      (List.map (fun (u, v) -> if u < v then (u, v) else (v, u)) edges)
  in
  Alcotest.(check int) "edge count" (List.length model) (Csr.n_edges g);
  Alcotest.(check (list (pair int int))) "edges recovered" model (Csr.edges g);
  for v = 0 to n - 1 do
    let expected =
      List.filter_map
        (fun (a, b) ->
          if a = v then Some b else if b = v then Some a else None)
        model
      |> List.sort compare
    in
    Alcotest.(check (list int))
      (Printf.sprintf "neighbors of %d sorted" v)
      expected
      (Array.to_list (Csr.neighbors g v))
  done;
  true

let print_edge_list (n, es) =
  Format.asprintf "n=%d edges=%a" n
    (Format.pp_print_list (fun fmt (u, v) -> Format.fprintf fmt "(%d,%d)" u v))
    es

let qtest_csr =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"of_edges = model" ~count:200
       ~print:print_edge_list gen_edge_list prop_of_edges_matches_model)

(* The uniform generator above rarely duplicates an edge more than
   once, so the counting-sort's merge path was effectively untested at
   its capacity boundaries. This mode draws a tiny pool of distinct
   edges and repeats each many times in both orientations: the raw
   list is far longer than the merged edge set. *)
let gen_duplicate_heavy =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* pool_size = int_range 1 4 in
    let* pool =
      list_size (pure pool_size)
        (let* u = int_range 0 (n - 1) in
         let* v = int_range 0 (n - 1) in
         pure (u, v))
    in
    let pool = List.filter (fun (u, v) -> u <> v) pool in
    let* copies = int_range 2 25 in
    let* flips = list_size (pure (List.length pool * copies)) bool in
    let repeated = List.concat_map (fun e -> List.init copies (fun _ -> e)) pool in
    let edges =
      List.map2 (fun (u, v) flip -> if flip then (v, u) else (u, v)) repeated flips
    in
    pure (n, edges))

let qtest_csr_duplicate_heavy =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"of_edges = model on duplicate-heavy lists"
       ~count:200 ~print:print_edge_list gen_duplicate_heavy
       prop_of_edges_matches_model)

let test_of_edges_capacity_boundaries () =
  (* m = 0: no edges at all *)
  let empty = Csr.of_edges 5 [] in
  Alcotest.(check int) "empty graph edges" 0 (Csr.n_edges empty);
  Alcotest.(check int) "empty graph max degree" 0 (Csr.max_degree empty);
  (* one distinct edge duplicated far past any plausible buffer size,
     in both orientations *)
  let dup =
    Csr.of_edges 3 (List.init 64 (fun i -> if i mod 2 = 0 then (0, 2) else (2, 0)))
  in
  Alcotest.(check int) "64 copies merge to one edge" 1 (Csr.n_edges dup);
  Alcotest.(check int) "degree after merge" 1 (Csr.degree dup 0);
  Alcotest.(check (array int)) "adjacency after merge" [| 0 |] (Csr.neighbors dup 2);
  (* full clique with every edge tripled: merged count must be exact *)
  let n = 6 in
  let clique_edges =
    List.concat_map
      (fun u ->
        List.concat_map
          (fun v -> if u < v then [ (u, v); (v, u); (u, v) ] else [])
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let clique = Csr.of_edges n clique_edges in
  Alcotest.(check int) "tripled K6 edge count" (n * (n - 1) / 2)
    (Csr.n_edges clique);
  Alcotest.(check int) "tripled K6 max degree" (n - 1) (Csr.max_degree clique)

let test_of_edges_self_loop_positions () =
  let expect_self_loop name edges =
    Alcotest.check_raises name (Invalid_argument "Csr.of_edges: self-loop")
      (fun () -> ignore (Csr.of_edges 4 edges))
  in
  expect_self_loop "self-loop mid-list" [ (0, 1); (2, 2); (1, 3) ];
  expect_self_loop "self-loop at the end" [ (0, 1); (1, 2); (3, 3) ];
  expect_self_loop "self-loop after many duplicates"
    (List.init 40 (fun i -> if i mod 2 = 0 then (0, 1) else (1, 0)) @ [ (2, 2) ]);
  expect_self_loop "self-loop alone" [ (1, 1) ];
  expect_self_loop "self-loop at vertex 0" [ (0, 0); (0, 1) ]

let suite =
  [
    Alcotest.test_case "of_edges basics" `Quick test_of_edges_basics;
    Alcotest.test_case "of_edges rejects" `Quick test_of_edges_rejects;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "builders sizes" `Quick test_builders_counts;
    Alcotest.test_case "9-pt degrees" `Quick test_stencil2_degrees;
    Alcotest.test_case "27-pt degrees" `Quick test_stencil3_degrees;
    Alcotest.test_case "bfs" `Quick test_bfs;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "bipartition" `Quick test_bipartition;
    Alcotest.test_case "odd cycle extraction" `Quick test_odd_cycle_extraction;
    Alcotest.test_case "cycle enumeration" `Quick test_cycle_enumeration;
    Alcotest.test_case "triangles" `Quick test_triangles;
    Alcotest.test_case "odd cycles only" `Quick test_odd_cycles_only;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "of_edges capacity boundaries" `Quick
      test_of_edges_capacity_boundaries;
    Alcotest.test_case "of_edges self-loop positions" `Quick
      test_of_edges_self_loop_positions;
    qtest_csr;
    qtest_csr_duplicate_heavy;
  ]
