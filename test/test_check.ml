(* The fuzzing and oracle subsystem itself: generator determinism and
   family coverage, shrinker determinism and minimality, repro
   round-trips, corpus replay, and the end-to-end guarantee the whole
   PR rests on — a seeded kernel bug is caught, shrunk to a tiny
   instance, and replays deterministically. *)

module S = Ivc_grid.Stencil
module Gen = Ivc_check.Gen
module Oracle = Ivc_check.Oracle
module Oracles = Ivc_check.Oracles
module Morph = Ivc_check.Morph
module Shrink = Ivc_check.Shrink
module Repro = Ivc_check.Repro
module Fuzz = Ivc_check.Fuzz

let same_inst a b =
  S.describe a = S.describe b && (a : S.t).w = (b : S.t).w

let dims_small inst =
  match (inst : S.t).dims with
  | S.D2 (x, y) -> x <= 6 && y <= 6
  | S.D3 (x, y, z) -> x <= 4 && y <= 4 && z <= 4

(* ---- generators --------------------------------------------------------- *)

let test_gen_deterministic () =
  for i = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "instance %d stable" i)
      true
      (same_inst (Gen.instance ~seed:7 ~index:i) (Gen.instance ~seed:7 ~index:i))
  done;
  let differs =
    List.exists
      (fun i ->
        not (same_inst (Gen.instance ~seed:7 ~index:i)
               (Gen.instance ~seed:8 ~index:i)))
      (List.init 20 Fun.id)
  in
  Alcotest.(check bool) "seed changes the stream" true differs;
  Alcotest.(check bool) "small2 stable" true
    (same_inst (Gen.small2 ~seed:123) (Gen.small2 ~seed:123));
  Alcotest.(check bool) "small3 stable" true
    (same_inst (Gen.small3 ~seed:123) (Gen.small3 ~seed:123))

let test_gen_family_coverage () =
  let k = List.length Gen.families in
  let covered = List.init k (fun i -> Gen.family_of_index ~index:i) in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "family %s in one cycle" (Gen.family_name f))
        true (List.mem f covered))
    Gen.families;
  (* every family builds a structurally sane instance *)
  List.iter
    (fun f ->
      let inst = Gen.of_family f ~seed:3 in
      Alcotest.(check bool)
        (Printf.sprintf "%s nonempty" (Gen.family_name f))
        true
        (S.n_vertices inst >= 1))
    Gen.families

let test_gen_hash () =
  let a = Gen.of_family Gen.Ring ~seed:5 in
  Alcotest.(check int) "hash is stable" (Gen.hash a) (Gen.hash a);
  Alcotest.(check bool) "hash non-negative" true (Gen.hash a >= 0);
  let b = Gen.of_family Gen.Ring ~seed:6 in
  Alcotest.(check bool) "hash separates instances"
    (same_inst a b) (Gen.hash a = Gen.hash b)

(* ---- shrinker ----------------------------------------------------------- *)

let buggy_fails inst =
  match Oracles.kernel_diff_buggy.Oracle.run inst with
  | Oracle.Fail _ -> true
  | Oracle.Pass -> false

let test_shrink_noop_on_pass () =
  let inst = Gen.small2 ~seed:4 in
  Alcotest.(check bool) "passing instance unchanged" true
    (same_inst inst (Shrink.shrink ~fails:(fun _ -> false) inst))

let test_shrink_dim_candidates () =
  let inst = Gen.small2 ~seed:9 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate strictly smaller" true
        (S.n_vertices c < S.n_vertices inst))
    (Shrink.dim_candidates inst);
  Alcotest.(check int) "1x1 has no candidates" 0
    (List.length (Shrink.dim_candidates (S.make2 ~x:1 ~y:1 [| 3 |])))

let test_shrink_deterministic_and_minimal_2d () =
  let inst = Util.random_inst2 ~seed:15 ~x:9 ~y:8 ~bound:20 in
  Alcotest.(check bool) "bug fires on the big instance" true (buggy_fails inst);
  let s1 = Shrink.shrink ~fails:buggy_fails inst in
  let s2 = Shrink.shrink ~fails:buggy_fails inst in
  Alcotest.(check bool) "shrink is deterministic" true (same_inst s1 s2);
  Alcotest.(check bool) "shrunk still fails" true (buggy_fails s1);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk within 6x6 (%s)" (S.describe s1))
    true (dims_small s1)

let test_shrink_deterministic_and_minimal_3d () =
  let inst = Util.random_inst3 ~seed:16 ~x:5 ~y:6 ~z:5 ~bound:12 in
  Alcotest.(check bool) "bug fires on the 3D instance" true (buggy_fails inst);
  let s1 = Shrink.shrink ~fails:buggy_fails inst in
  Alcotest.(check bool) "shrunk still fails" true (buggy_fails s1);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk within 4x4x4 (%s)" (S.describe s1))
    true (dims_small s1);
  Alcotest.(check bool) "shrink is deterministic" true
    (same_inst s1 (Shrink.shrink ~fails:buggy_fails inst))

(* ---- repro files --------------------------------------------------------- *)

let test_repro_roundtrip () =
  let r =
    {
      Repro.oracle = "kernel-diff";
      seed = Some 42;
      note = Some "round-trip probe";
      deltas = [];
      instance = Gen.of_family Gen.Heavy_tail ~seed:2;
    }
  in
  let r' = Repro.of_string (Repro.to_string r) in
  Alcotest.(check string) "oracle survives" r.Repro.oracle r'.Repro.oracle;
  Alcotest.(check (option int)) "seed survives" r.Repro.seed r'.Repro.seed;
  Alcotest.(check (option string)) "note survives" r.Repro.note r'.Repro.note;
  Alcotest.(check bool) "instance survives" true
    (same_inst r.Repro.instance r'.Repro.instance);
  (* no optional fields *)
  let bare =
    { Repro.oracle = "cert"; seed = None; note = None; deltas = [];
      instance = S.make2 ~x:1 ~y:2 [| 1; 1 |] }
  in
  let bare' = Repro.of_string (Repro.to_string bare) in
  Alcotest.(check (option int)) "absent seed stays absent" None bare'.Repro.seed

let expect_io_error name s =
  match Repro.of_string s with
  | exception Spatial_data.Io.Io_error _ -> ()
  | _ -> Alcotest.failf "%s: malformed repro was accepted" name

let test_repro_malformed () =
  expect_io_error "bad magic" "ivc-repro 9\noracle cert\nivc2 1 1\n3\n";
  expect_io_error "missing oracle" "ivc-repro 1\nivc2 1 1\n3\n";
  expect_io_error "bad seed" "ivc-repro 1\noracle cert\nseed zzz\nivc2 1 1\n3\n";
  expect_io_error "unknown field"
    "ivc-repro 1\noracle cert\nbogus 1\nivc2 1 1\n3\n";
  expect_io_error "missing instance" "ivc-repro 1\noracle cert\n";
  expect_io_error "truncated weights" "ivc-repro 1\noracle cert\nivc2 2 2\n1 2\n"

let test_repro_delta_roundtrip () =
  let module D = Ivc_incremental.Delta in
  let deltas =
    [
      D.Bump { v = 3; dw = 2 };
      D.Batch [| (0, 1); (5, -1); (0, 4) |];
      D.Extend { slabs = 2; w = [| 1; 0; 3; 2; 2; 0 |] };
      D.Bump { v = 7; dw = -2 };
    ]
  in
  let r =
    {
      Repro.oracle = "incremental";
      seed = Some 9;
      note = Some "delta round-trip";
      deltas;
      instance = S.make2 ~x:3 ~y:3 [| 1; 2; 0; 3; 1; 1; 0; 2; 1 |];
    }
  in
  let r' = Repro.of_string (Repro.to_string r) in
  Alcotest.(check bool) "delta stream survives" true (r'.Repro.deltas = deltas);
  Alcotest.(check bool) "instance survives" true
    (same_inst r.Repro.instance r'.Repro.instance);
  (* malformed delta lines are structural errors *)
  expect_io_error "bad delta kind"
    "ivc-repro 1\noracle incremental\ndelta nudge 1 2\nivc2 1 1\n3\n";
  expect_io_error "odd batch payload"
    "ivc-repro 1\noracle incremental\ndelta batch 1 2 3\nivc2 1 1\n3\n";
  expect_io_error "bump arity"
    "ivc-repro 1\noracle incremental\ndelta bump 1\nivc2 1 1\n3\n"

(* ---- corpus replay -------------------------------------------------------- *)

(* Regression corpus: every production-oracle repro must pass; the one
   kernel-diff!bug repro (the shrunk demo-bug instance) must still be
   caught, deterministically, with the same diagnosis. *)
let test_corpus_replay () =
  let files =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
  in
  Alcotest.(check bool)
    (Printf.sprintf "corpus has >= 15 cases (got %d)" (List.length files))
    true
    (List.length files >= 15);
  List.iter
    (fun f ->
      let path = Filename.concat "corpus" f in
      let name, verdict = Fuzz.replay path in
      match (String.index_opt name '!', verdict) with
      | None, Oracle.Pass -> ()
      | None, Oracle.Fail msg -> Alcotest.failf "%s: %s: %s" f name msg
      | Some _, Oracle.Fail _ -> () (* the demo bug must keep failing *)
      | Some _, Oracle.Pass ->
          Alcotest.failf "%s: the injected-bug repro no longer fails" f)
    files

let test_replay_unknown_oracle () =
  let path = Filename.temp_file "ivc-check" ".repro" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Repro.save path
        { Repro.oracle = "no-such-oracle"; seed = None; note = None;
          deltas = []; instance = S.make2 ~x:1 ~y:1 [| 1 |] };
      match Fuzz.replay path with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "unknown oracle must be rejected")

(* ---- campaigns ------------------------------------------------------------ *)

let test_fuzz_clean_campaign () =
  let r = Fuzz.run ~seed:1 ~budget_s:60.0 ~max_instances:20 () in
  Alcotest.(check int) "all 20 instances generated" 20 r.Fuzz.instances;
  Alcotest.(check bool) "oracle runs accumulated" true
    (r.Fuzz.oracle_runs >= r.Fuzz.instances);
  (match r.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "oracle %s failed on instance %d: %s" f.Fuzz.oracle
        f.Fuzz.index f.Fuzz.message)

let test_fuzz_catches_injected_bug () =
  let r =
    Fuzz.run ~seed:42 ~budget_s:60.0 ~max_instances:12
      ~oracles:[ Oracles.kernel_diff_buggy ] ()
  in
  Alcotest.(check bool) "bug found" true (r.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d shrunk small (%s)" f.Fuzz.index
           (S.describe f.Fuzz.shrunk))
        true
        (dims_small f.Fuzz.shrunk);
      (* the shrunk repro fails again, with the same diagnosis *)
      match Oracles.kernel_diff_buggy.Oracle.run f.Fuzz.shrunk with
      | Oracle.Fail msg ->
          Alcotest.(check string) "diagnosis replays" f.Fuzz.shrunk_message msg
      | Oracle.Pass -> Alcotest.fail "shrunk instance no longer fails")
    r.Fuzz.failures;
  (* the campaign itself is deterministic *)
  let r' =
    Fuzz.run ~seed:42 ~budget_s:60.0 ~max_instances:12
      ~oracles:[ Oracles.kernel_diff_buggy ] ()
  in
  Alcotest.(check int) "same failure count" (List.length r.Fuzz.failures)
    (List.length r'.Fuzz.failures);
  List.iter2
    (fun (a : Fuzz.failure) (b : Fuzz.failure) ->
      Alcotest.(check int) "same failing index" a.Fuzz.index b.Fuzz.index;
      Alcotest.(check bool) "same shrunk instance" true
        (same_inst a.Fuzz.shrunk b.Fuzz.shrunk))
    r.Fuzz.failures r'.Fuzz.failures

let test_fuzz_repro_files_replay () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivc-fuzz-%d" (Unix.getpid ()))
  in
  let r =
    Fuzz.run ~seed:42 ~budget_s:60.0 ~max_instances:3
      ~oracles:[ Oracles.kernel_diff_buggy ] ~out_dir:dir ()
  in
  Alcotest.(check bool) "wrote at least one repro" true (r.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      match f.Fuzz.repro_path with
      | None -> Alcotest.fail "failure without a repro path"
      | Some path ->
          let name, verdict = Fuzz.replay path in
          Alcotest.(check string) "repro names its oracle"
            Oracles.kernel_diff_buggy.Oracle.name name;
          (match verdict with
          | Oracle.Fail _ -> ()
          | Oracle.Pass -> Alcotest.failf "%s replays clean" path);
          Sys.remove path)
    r.Fuzz.failures;
  Sys.rmdir dir

(* ---- oracle registry ------------------------------------------------------- *)

let test_registry_lookup () =
  Alcotest.(check int) "fourteen production oracles" 14
    (List.length Oracles.all);
  List.iter
    (fun (o : Oracle.t) ->
      match Oracles.find o.Oracle.name with
      | Some o' -> Alcotest.(check string) "find by name" o.Oracle.name o'.Oracle.name
      | None -> Alcotest.failf "oracle %s not found by name" o.Oracle.name)
    Oracles.all;
  (match Oracles.find "CERT" with
  | Some o -> Alcotest.(check string) "lookup is case-insensitive" "cert" o.Oracle.name
  | None -> Alcotest.fail "case-insensitive lookup failed");
  Alcotest.(check (option string)) "unknown name" None
    (Option.map (fun (o : Oracle.t) -> o.Oracle.name) (Oracles.find "no-such"));
  Alcotest.(check bool) "buggy oracle is findable" true
    (Oracles.find "kernel-diff!bug" <> None);
  Alcotest.(check bool) "buggy oracle is not in the registry" true
    (not (List.exists (fun (o : Oracle.t) -> o.Oracle.name = "kernel-diff!bug")
            Oracles.all))

let test_morphs_applicable () =
  let inst2 = Gen.small2 ~seed:1 and inst3 = Gen.small3 ~seed:1 in
  let names l = List.map (fun (m : Morph.t) -> m.Morph.name) l in
  Alcotest.(check bool) "2D gets transpose" true
    (List.mem "transpose" (names (Morph.applicable inst2)));
  Alcotest.(check bool) "2D never gets z-reflection" false
    (List.mem "reflect-z" (names (Morph.applicable inst2)));
  Alcotest.(check bool) "3D gets axis swap" true
    (List.mem "swap-xy" (names (Morph.applicable inst3)))

(* The adversarial families through the bound and metamorphic oracles:
   known structure (chains, cliques, rings, stripes) is where a wrong
   bound or a broken symmetry argument shows first. *)
let test_families_oracles () =
  List.iter
    (fun f ->
      let inst = Gen.of_family f ~seed:11 in
      List.iter
        (fun (o : Oracle.t) ->
          if o.Oracle.applies inst then ignore (Util.oracle_holds o inst))
        [ Oracles.bound_sandwich; Oracles.bound_monotone; Oracles.metamorphic ])
    Gen.families

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick test_gen_deterministic;
    Alcotest.test_case "generator family coverage" `Quick
      test_gen_family_coverage;
    Alcotest.test_case "instance hash" `Quick test_gen_hash;
    Alcotest.test_case "shrink no-op on pass" `Quick test_shrink_noop_on_pass;
    Alcotest.test_case "shrink dim candidates" `Quick
      test_shrink_dim_candidates;
    Alcotest.test_case "shrink deterministic + minimal (2D)" `Quick
      test_shrink_deterministic_and_minimal_2d;
    Alcotest.test_case "shrink deterministic + minimal (3D)" `Quick
      test_shrink_deterministic_and_minimal_3d;
    Alcotest.test_case "repro round-trip" `Quick test_repro_roundtrip;
    Alcotest.test_case "repro rejects malformed input" `Quick
      test_repro_malformed;
    Alcotest.test_case "repro delta round-trip" `Quick
      test_repro_delta_roundtrip;
    Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    Alcotest.test_case "replay rejects unknown oracle" `Quick
      test_replay_unknown_oracle;
    Alcotest.test_case "clean campaign on the production registry" `Quick
      test_fuzz_clean_campaign;
    Alcotest.test_case "injected bug caught, shrunk, deterministic" `Quick
      test_fuzz_catches_injected_bug;
    Alcotest.test_case "repro files replay" `Quick test_fuzz_repro_files_replay;
    Alcotest.test_case "oracle registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "metamorphic applicability" `Quick
      test_morphs_applicable;
    Alcotest.test_case "families through bound/metamorphic oracles" `Quick
      test_families_oracles;
    Util.qtest ~count:40 "bound-sandwich oracle (2D)" Util.gen_inst2
      (Util.oracle_holds Oracles.bound_sandwich);
    Util.qtest ~count:25 "bound-sandwich oracle (3D)" Util.gen_inst3
      (Util.oracle_holds Oracles.bound_sandwich);
    Util.qtest ~count:40 "bound-monotone oracle (2D)" Util.gen_inst2
      (Util.oracle_holds Oracles.bound_monotone);
    Util.qtest ~count:40 "metamorphic oracle (2D)" Util.gen_inst2
      (Util.oracle_holds Oracles.metamorphic);
    Util.qtest ~count:25 "metamorphic oracle (3D)" Util.gen_inst3
      (Util.oracle_holds Oracles.metamorphic);
  ]
