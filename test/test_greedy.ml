module S = Ivc_grid.Stencil
module G = Ivc.Greedy
module I = Ivc.Interval

let iv s l = I.make ~start:s ~len:l

let test_first_fit () =
  Alcotest.(check int) "empty neighborhood" 0 (G.first_fit ~len:3 []);
  Alcotest.(check int) "after one block" 2 (G.first_fit ~len:3 [ iv 0 2 ]);
  Alcotest.(check int) "fits in gap" 2 (G.first_fit ~len:2 [ iv 0 2; iv 4 3 ]);
  Alcotest.(check int) "gap too small" 7 (G.first_fit ~len:3 [ iv 0 2; iv 4 3 ]);
  Alcotest.(check int) "unsorted input" 7 (G.first_fit ~len:3 [ iv 4 3; iv 0 2 ]);
  Alcotest.(check int) "zero length" 0 (G.first_fit ~len:0 [ iv 0 100 ]);
  Alcotest.(check int) "ignores empty intervals" 0 (G.first_fit ~len:5 [ iv 2 0 ]);
  Alcotest.(check int) "overlapping neighbors" 7
    (G.first_fit ~len:1 [ iv 0 5; iv 3 4 ]);
  Alcotest.(check int) "duplicate neighbors" 2 (G.first_fit ~len:9 [ iv 0 2; iv 0 2 ])

let test_color_in_order_row_major () =
  (* 1x? is forbidden (dims >= 1 is ok; use a 2x3) *)
  let inst = S.make2 ~x:2 ~y:3 [| 1; 1; 1; 1; 1; 1 |] in
  let starts = G.color_in_order inst (S.row_major_order inst) in
  Util.check_valid inst starts;
  (* row-major greedy on unit weights colors a 9-pt 2x3 like a clique
     sweep: maxcolor must be at least the largest K4 = 4 *)
  Alcotest.(check bool) "at least clique bound" true
    (Util.maxcolor inst starts >= 4)

let test_incremental_state () =
  let inst = S.make2 ~x:2 ~y:2 [| 2; 3; 4; 5 |] in
  let st = G.create inst in
  Alcotest.(check int) "remaining" 4 (G.remaining st);
  Alcotest.(check bool) "not colored" false (G.is_colored st 0);
  let s0 = G.color_vertex st 0 in
  Alcotest.(check int) "first at zero" 0 s0;
  Alcotest.(check int) "recolor is stable" 0 (G.color_vertex st 0);
  let s1 = G.color_vertex st 1 in
  Alcotest.(check int) "second stacks" 2 s1;
  Alcotest.(check int) "maxcolor" 5 (G.maxcolor st);
  G.uncolor st 1;
  Alcotest.(check bool) "uncolored" false (G.is_colored st 1);
  Alcotest.(check int) "remaining after uncolor" 3 (G.remaining st);
  let s1' = G.recolor st 1 in
  Alcotest.(check int) "recolor deterministic" 2 s1';
  let starts = G.starts st in
  Alcotest.(check int) "snapshot start" 2 starts.(1);
  Alcotest.(check int) "snapshot uncolored" (-1) starts.(3)

let test_rejects_non_permutation () =
  let inst = S.make2 ~x:2 ~y:2 [| 1; 1; 1; 1 |] in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Greedy.color_in_order: order length mismatch") (fun () ->
      ignore (G.color_in_order inst [| 0; 1 |]));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Greedy.color_in_order: order is not a permutation")
    (fun () -> ignore (G.color_in_order inst [| 0; 0; 1; 2 |]))

let test_graph_version_matches () =
  let inst = Util.random_inst2 ~seed:3 ~x:4 ~y:4 ~bound:9 in
  let order = Ivc.Heuristics.largest_first_order inst in
  let a = G.color_in_order inst order in
  let b = G.color_in_order_graph (S.to_graph inst) ~w:(inst : S.t).w order in
  Alcotest.(check (array int)) "same coloring" a b

let prop_any_order_valid =
  Util.qtest ~count:80 "greedy is valid in any order" Util.gen_inst2 (fun inst ->
      (* use a deterministic shuffled order derived from the weights *)
      let n = S.n_vertices inst in
      let order = Array.init n (fun i -> i) in
      let key v = ((S.weight inst v * 7919) + (v * 13)) mod 101 in
      Array.sort (fun a b -> compare (key a, a) (key b, b)) order;
      let starts = Ivc.Greedy.color_in_order inst order in
      Ivc.Coloring.is_valid inst starts)

(* Lemma 7: any greedy coloring ends vertex v at most at
   sum_{j in N(v)} w(j) + (d+1) w(v) - d. *)
let prop_lemma7_bound =
  Util.qtest ~count:80 "Lemma 7 per-vertex bound" Util.gen_inst2 (fun inst ->
      let starts = Ivc.Heuristics.gll inst in
      let ok = ref true in
      for v = 0 to S.n_vertices inst - 1 do
        let end_v = starts.(v) + S.weight inst v in
        if end_v > Ivc.Bounds.greedy_vertex_ub inst v then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "first_fit" `Quick test_first_fit;
    Alcotest.test_case "row-major coloring" `Quick test_color_in_order_row_major;
    Alcotest.test_case "incremental state" `Quick test_incremental_state;
    Alcotest.test_case "rejects bad orders" `Quick test_rejects_non_permutation;
    Alcotest.test_case "graph version agrees" `Quick test_graph_version_matches;
    prop_any_order_valid;
    prop_lemma7_bound;
  ]
