module P = Perfprof.Profile
module St = Perfprof.Stats

(* 3 instances, 2 algorithms: A = [10;10;10], B = [10;15;20] *)
let results = [| [| 10; 10 |]; [| 10; 15 |]; [| 10; 20 |] |]
let profiles () = P.compute ~algorithms:[| "A"; "B" |] results

let test_compute_and_wins () =
  match profiles () with
  | [ a; b ] ->
      Alcotest.(check string) "names" "A" a.P.algorithm;
      Alcotest.(check (float 1e-9)) "A wins all" 1.0 (P.wins a);
      Alcotest.(check (float 1e-9)) "B wins a third" (1.0 /. 3.0) (P.wins b)
  | _ -> Alcotest.fail "expected two profiles"

let test_proportion_at () =
  match profiles () with
  | [ _; b ] ->
      Alcotest.(check (float 1e-9)) "below 1.5" (1.0 /. 3.0) (P.proportion_at b 1.4);
      Alcotest.(check (float 1e-9)) "at 1.5" (2.0 /. 3.0) (P.proportion_at b 1.5);
      Alcotest.(check (float 1e-9)) "at 2" 1.0 (P.proportion_at b 2.0);
      Alcotest.(check (float 1e-9)) "below 1" 0.0 (P.proportion_at b 0.5)
  | _ -> Alcotest.fail "expected two profiles"

let test_auc () =
  match profiles () with
  | [ a; b ] ->
      Alcotest.(check (float 1e-9)) "perfect algorithm" 1.0 (P.auc ~tau_max:2.0 a);
      (* B: 1/3 on [1,1.5), 2/3 on [1.5,2): (0.5/3 + 0.5*2/3) / 1 = 1/2 *)
      Alcotest.(check (float 1e-9)) "step integral" 0.5 (P.auc ~tau_max:2.0 b);
      Alcotest.(check bool) "dominance" true (P.auc ~tau_max:2.0 a >= P.auc ~tau_max:2.0 b)
  | _ -> Alcotest.fail "expected two profiles"

let test_compute_rejects () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Profile.compute: non-positive value") (fun () ->
      ignore (P.compute ~algorithms:[| "A" |] [| [| 0 |] |]));
  Alcotest.check_raises "ragged" (Invalid_argument "Profile.compute: ragged results")
    (fun () -> ignore (P.compute ~algorithms:[| "A"; "B" |] [| [| 1 |] |]))

let test_empty () =
  match P.compute ~algorithms:[| "A" |] [||] with
  | [ a ] -> Alcotest.(check (float 0.)) "empty wins 0" 0.0 (P.wins a)
  | _ -> Alcotest.fail "one profile expected"

let test_stats_basic () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (St.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (St.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (St.median [| 1.0; 2.0; 3.0; 4.0 |]);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (St.geometric_mean [| 1.0; 2.0; 4.0 |]);
  let lo, hi = St.min_max [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (float 0.)) "min" 1.0 lo;
  Alcotest.(check (float 0.)) "max" 3.0 hi

let test_stats_ratios () =
  Alcotest.(check (float 1e-9)) "avg ratio" 1.25 (St.avg_ratio [| 10; 15 |] [| 10; 10 |]);
  Alcotest.(check (float 1e-9)) "skips zero refs" 1.5
    (St.avg_ratio [| 15; 99 |] [| 10; 0 |]);
  Alcotest.(check (float 1e-9)) "pct equal" 50.0 (St.pct_equal [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check (float 1e-9)) "pct improvement" 100.0
    (St.pct_improvement [| 1.0 |] [| 2.0 |])

let test_ascii_renders () =
  let out = Format.asprintf "%a" (fun f p -> Perfprof.Ascii.render_profiles f p) (profiles ()) in
  Alcotest.(check bool) "profile canvas non-empty" true (String.length out > 100);
  let table =
    Format.asprintf "%a"
      (fun f () ->
        Perfprof.Ascii.table f ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "30"; "4" ] ])
      ()
  in
  Alcotest.(check bool) "table non-empty" true (String.length table > 10);
  let hm = Format.asprintf "%a" (fun f () -> Perfprof.Ascii.heatmap f ~x:3 ~y:3 (fun i j -> i * j)) () in
  Alcotest.(check bool) "heatmap non-empty" true (String.length hm > 8)

let suite =
  [
    Alcotest.test_case "compute and wins" `Quick test_compute_and_wins;
    Alcotest.test_case "proportion_at" `Quick test_proportion_at;
    Alcotest.test_case "auc" `Quick test_auc;
    Alcotest.test_case "compute rejects" `Quick test_compute_rejects;
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "stats basics" `Quick test_stats_basic;
    Alcotest.test_case "stats ratios" `Quick test_stats_ratios;
    Alcotest.test_case "ascii rendering" `Quick test_ascii_renders;
  ]
