module S = Ivc_grid.Stencil
module P = Ivc_parcolor.Parallel_greedy

let test_valid_small () =
  let inst = Util.random_inst2 ~seed:91 ~x:8 ~y:8 ~bound:15 in
  let starts, stats = P.color ~workers:(Util.workers ()) inst in
  Util.check_valid inst starts;
  Alcotest.(check bool) "terminates in few rounds" true (stats.P.rounds <= 64);
  Alcotest.(check bool) "at least the LB" true
    (Util.maxcolor inst starts >= Ivc.Bounds.clique_lb inst)

let test_valid_3d () =
  let inst = Util.random_inst3 ~seed:92 ~x:4 ~y:4 ~z:3 ~bound:9 in
  let starts, _ = P.color ~workers:(Util.workers ()) inst in
  Util.check_valid inst starts

let test_single_worker_equals_sequential () =
  (* one worker has no speculation: must match the sequential greedy *)
  let inst = Util.random_inst2 ~seed:93 ~x:6 ~y:7 ~bound:12 in
  let order = Ivc.Order.largest_first inst in
  let starts, stats = P.color ~workers:1 ~order inst in
  Alcotest.(check (array int)) "matches sequential greedy"
    (Ivc.Greedy.color_in_order inst order)
    starts;
  Alcotest.(check int) "no conflicts" 0 stats.P.conflicts_total;
  Alcotest.(check int) "one round" 1 stats.P.rounds

let test_custom_order () =
  let inst = Util.random_inst2 ~seed:94 ~x:6 ~y:6 ~bound:9 in
  let starts, _ = P.color ~workers:(Util.workers ~max:2 ()) ~order:(Ivc.Order.hilbert inst) inst in
  Util.check_valid inst starts

let test_rejects_bad_order () =
  let inst = Util.random_inst2 ~seed:95 ~x:3 ~y:3 ~bound:5 in
  Alcotest.check_raises "order length"
    (Invalid_argument "Parallel_greedy.color: order length") (fun () ->
      ignore (P.color ~order:[| 0; 1 |] inst))

let test_zero_weight_instance () =
  let inst = S.init2 ~x:5 ~y:5 (fun _ _ -> 0) in
  let starts, _ = P.color ~workers:(Util.workers ()) inst in
  Alcotest.(check int) "zero colors" 0 (Util.maxcolor inst starts)

let prop_parallel_valid =
  Util.qtest ~count:30 "parallel coloring always valid" Util.gen_inst2
    (fun inst ->
      let starts, _ = P.color ~workers:(Util.workers ()) inst in
      Ivc.Coloring.is_valid inst starts)

let suite =
  [
    Alcotest.test_case "valid on 2D" `Quick test_valid_small;
    Alcotest.test_case "valid on 3D" `Quick test_valid_3d;
    Alcotest.test_case "1 worker = sequential" `Quick test_single_worker_equals_sequential;
    Alcotest.test_case "custom order" `Quick test_custom_order;
    Alcotest.test_case "rejects bad order" `Quick test_rejects_bad_order;
    Alcotest.test_case "all-zero instance" `Quick test_zero_weight_instance;
    prop_parallel_valid;
  ]
