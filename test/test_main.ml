(* Aggregated alcotest runner for the whole repository. *)

let () =
  Alcotest.run "ivc-stencil"
    [
      ("interval", Test_interval.suite);
      ("graph", Test_graph.suite);
      ("grid", Test_grid.suite);
      ("coloring", Test_coloring.suite);
      ("greedy", Test_greedy.suite);
      ("kernel", Test_kernel.suite);
      ("special-cases", Test_special.suite);
      ("bounds", Test_bounds.suite);
      ("heuristics", Test_heuristics.suite);
      ("bipartite-decomposition", Test_bd.suite);
      ("exact", Test_exact.suite);
      ("nae3sat", Test_sat.suite);
      ("datasets", Test_data.suite);
      ("profiles", Test_profile.suite);
      ("observability", Test_obs.suite);
      ("taskpar", Test_par.suite);
      ("stkde", Test_stkde.suite);
      ("order", Test_order.suite);
      ("compaction", Test_compaction.suite);
      ("iterated-greedy", Test_iterated.suite);
      ("classic-coloring", Test_classic.suite);
      ("hardness", Test_hardness.suite);
      ("parallel-coloring", Test_parcolor.suite);
      ("resilience", Test_resilient.suite);
      ("out-of-core", Test_ooc.suite);
      ("check", Test_check.suite);
      ("incremental", Test_incremental.suite);
      ("persist", Test_persist.suite);
      ("server", Test_server.suite);
      ("generators", Test_generators.suite);
      ("io", Test_io.suite);
      ("svg", Test_svg.suite);
      ("integration", Test_integration.suite);
      ("edge-cases", Test_edge_cases.suite);
    ]
