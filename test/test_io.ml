module Io = Spatial_data.Io
module P = Spatial_data.Points
module S = Ivc_grid.Stencil

let test_cloud_roundtrip () =
  let cloud = Spatial_data.Datasets.dengue ~scale:0.02 () in
  let csv = Io.cloud_to_csv cloud in
  let back = Io.cloud_of_csv ~name:"roundtrip" csv in
  Alcotest.(check int) "size preserved" (P.size cloud) (P.size back);
  Alcotest.(check (float 1e-6)) "bbox x0" cloud.P.x0 back.P.x0;
  Alcotest.(check (float 1e-6)) "bbox t1" cloud.P.t1 back.P.t1

let test_cloud_csv_errors () =
  (match Io.cloud_of_csv ~name:"t" "a,b\n1,2\n" with
  | exception Io.Io_error { line = Some 1; _ } -> ()
  | _ -> Alcotest.fail "bad header must fail");
  (match Io.cloud_of_csv ~name:"t" "x,y,t\n1,zap,3\n" with
  | exception Io.Io_error { line = Some 2; _ } -> ()
  | _ -> Alcotest.fail "bad number must fail");
  match Io.cloud_of_csv ~name:"t" "x,y,t\n1,2\n" with
  | exception Io.Io_error _ -> ()
  | _ -> Alcotest.fail "missing field must fail"

let test_cloud_csv_blank_lines () =
  let c = Io.cloud_of_csv ~name:"t" "x,y,t\n1,2,3\n\n4,5,6\n\n" in
  Alcotest.(check int) "two points" 2 (P.size c)

let test_instance_roundtrip_2d () =
  let inst = Util.random_inst2 ~seed:101 ~x:5 ~y:7 ~bound:99 in
  let back = Io.instance_of_string (Io.instance_to_string inst) in
  Alcotest.(check string) "describe equal" (S.describe inst) (S.describe back);
  Alcotest.(check (array int)) "weights equal" (inst : S.t).w (back : S.t).w

let test_instance_roundtrip_3d () =
  let inst = Util.random_inst3 ~seed:102 ~x:3 ~y:4 ~z:5 ~bound:50 in
  let back = Io.instance_of_string (Io.instance_to_string inst) in
  Alcotest.(check (array int)) "weights equal" (inst : S.t).w (back : S.t).w

let test_instance_errors () =
  (match Io.instance_of_string "bogus 2 2\n1 1 1 1" with
  | exception Io.Io_error _ -> ()
  | _ -> Alcotest.fail "bad magic must fail");
  (match Io.instance_of_string "ivc2 2 2\n1 1 1" with
  | exception Io.Io_error _ -> ()
  | _ -> Alcotest.fail "wrong count must fail");
  (match Io.instance_of_string "ivc2 2 a\n1 1 1 1" with
  | exception Io.Io_error { line = Some 1; _ } -> ()
  | _ -> Alcotest.fail "bad dimension must fail");
  (* file context is attached when the parse came from a file *)
  (match Io.instance_of_string ~file:"weights.ivc" "ivc2 2 2\n1 1 1" with
  | exception Io.Io_error { file = Some "weights.ivc"; _ } -> ()
  | _ -> Alcotest.fail "file context must be attached");
  match Io.instance_of_string "ivc2 2 2\n1 1 x 1" with
  | exception Io.Io_error _ -> ()
  | _ -> Alcotest.fail "bad token must fail"

let test_coloring_roundtrip () =
  let starts = [| 0; 5; 12; 3; 0 |] in
  Alcotest.(check (array int)) "roundtrip" starts
    (Io.coloring_of_string (Io.coloring_to_string starts))

let test_file_helpers () =
  let path = Filename.temp_file "ivc_io_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path "hello\nworld";
      Alcotest.(check string) "load after save" "hello\nworld" (Io.load path))

let test_load_missing_file () =
  match Io.load "/nonexistent/ivc-test/weights.ivc" with
  | exception Io.Io_error { file = Some f; _ } ->
      Alcotest.(check bool) "path in error" true
        (f = "/nonexistent/ivc-test/weights.ivc")
  | _ -> Alcotest.fail "missing file must raise Io_error"

let test_end_to_end_via_files () =
  (* save an instance, load it, color it — the downstream-user path *)
  let inst = Util.random_inst2 ~seed:103 ~x:6 ~y:6 ~bound:20 in
  let path = Filename.temp_file "ivc_inst" ".ivc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path (Io.instance_to_string inst);
      let loaded = Io.instance_of_string (Io.load path) in
      let starts = Ivc.Bipartite_decomp.bdp loaded in
      Util.check_valid loaded starts)

let suite =
  [
    Alcotest.test_case "cloud roundtrip" `Quick test_cloud_roundtrip;
    Alcotest.test_case "cloud csv errors" `Quick test_cloud_csv_errors;
    Alcotest.test_case "cloud csv blank lines" `Quick test_cloud_csv_blank_lines;
    Alcotest.test_case "instance roundtrip 2D" `Quick test_instance_roundtrip_2d;
    Alcotest.test_case "instance roundtrip 3D" `Quick test_instance_roundtrip_3d;
    Alcotest.test_case "instance errors" `Quick test_instance_errors;
    Alcotest.test_case "coloring roundtrip" `Quick test_coloring_roundtrip;
    Alcotest.test_case "file helpers" `Quick test_file_helpers;
    Alcotest.test_case "missing file" `Quick test_load_missing_file;
    Alcotest.test_case "end-to-end via files" `Quick test_end_to_end_via_files;
  ]
