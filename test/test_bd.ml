module S = Ivc_grid.Stencil
module BD = Ivc.Bipartite_decomp

let test_bd2_valid_and_bounded () =
  let inst = Util.random_inst2 ~seed:14 ~x:8 ~y:7 ~bound:30 in
  let r = BD.bd2 inst in
  Util.check_valid inst r.BD.starts;
  let mc = Util.maxcolor inst r.BD.starts in
  Alcotest.(check bool) "uses at most 2 RC" true (mc <= 2 * r.BD.part_colors);
  (* RC is a valid lower bound: no heuristic may beat it *)
  Alcotest.(check bool) "RC is a lower bound" true
    (r.BD.lower_bound <= Util.maxcolor inst (Ivc.Heuristics.sgk inst))

let test_bd2_2approx_vs_exact () =
  let inst = Util.random_inst2 ~seed:15 ~x:4 ~y:4 ~bound:8 in
  match Ivc_exact.Cp.optimize inst with
  | None -> Alcotest.fail "exact budget"
  | Some (opt, _) ->
      let r = BD.bd2 inst in
      let mc = Util.maxcolor inst r.BD.starts in
      Alcotest.(check bool) "lower bound sound" true (r.BD.lower_bound <= opt);
      Alcotest.(check bool) "2-approximation" true (mc <= 2 * opt)

let test_bd3_valid_and_4approx () =
  let inst = Util.random_inst3 ~seed:16 ~x:3 ~y:3 ~z:3 ~bound:6 in
  let r = BD.bd3 inst in
  Util.check_valid inst r.BD.starts;
  match Ivc_exact.Optimize.solve ~budget:60_000 inst with
  | { Ivc_exact.Optimize.proven_optimal = true; upper_bound = opt; _ } ->
      let mc = Util.maxcolor inst r.BD.starts in
      Alcotest.(check bool) "4-approximation" true (mc <= 4 * opt);
      Alcotest.(check bool) "lb sound" true (r.BD.lower_bound <= opt)
  | _ -> () (* exact did not close; approximation claim untestable here *)

let test_row_structure () =
  (* even rows (j even) must use colors in [0, RC), odd rows in [RC, 2RC) *)
  let inst = Util.random_inst2 ~seed:17 ~x:5 ~y:6 ~bound:10 in
  let r = BD.bd2 inst in
  let rc = r.BD.part_colors in
  for v = 0 to S.n_vertices inst - 1 do
    let _, j = S.coord2 inst v in
    let s = r.BD.starts.(v) in
    let e = s + S.weight inst v in
    if j land 1 = 0 then
      Alcotest.(check bool) "even row low" true (s >= 0 && e <= rc)
    else Alcotest.(check bool) "odd row high" true (s >= rc && e <= 2 * rc)
  done

let test_post_never_worse_pointwise () =
  let inst = Util.random_inst2 ~seed:18 ~x:7 ~y:5 ~bound:18 in
  let r = BD.bd inst in
  let post = BD.post inst r.BD.starts in
  Util.check_valid inst post;
  for v = 0 to S.n_vertices inst - 1 do
    Alcotest.(check bool) "start can only decrease" true (post.(v) <= r.BD.starts.(v))
  done

let test_post_order_dedupes () =
  let inst = Util.random_inst2 ~seed:19 ~x:4 ~y:4 ~bound:9 in
  let r = BD.bd inst in
  let order = BD.post_order inst r.BD.starts in
  let n = S.n_vertices inst in
  Alcotest.(check int) "covers all vertices" n (Array.length order);
  let seen = Array.make n false in
  Array.iter (fun v -> seen.(v) <- true) order;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

let test_bdp_valid_3d () =
  let inst = Util.random_inst3 ~seed:20 ~x:3 ~y:4 ~z:3 ~bound:9 in
  Util.check_valid inst (BD.bdp inst)

let test_dimension_checks () =
  let i2 = S.init2 ~x:2 ~y:2 (fun _ _ -> 1) in
  let i3 = S.init3 ~x:2 ~y:2 ~z:2 (fun _ _ _ -> 1) in
  Alcotest.check_raises "bd2 on 3d" (Invalid_argument "Bipartite_decomp.bd2: 3D instance")
    (fun () -> ignore (BD.bd2 i3));
  Alcotest.check_raises "bd3 on 2d" (Invalid_argument "Bipartite_decomp.bd3: 2D instance")
    (fun () -> ignore (BD.bd3 i2));
  (* dispatching wrapper accepts both *)
  Util.check_valid i2 (BD.bd i2).BD.starts;
  Util.check_valid i3 (BD.bd i3).BD.starts

let prop_bd_2approx_certificate =
  Util.qtest ~count:60 "BD certificate maxcolor <= 2 RC <= 2 opt" Util.gen_inst2
    (fun inst ->
      let r = BD.bd2 inst in
      Ivc.Coloring.is_valid inst r.BD.starts
      && Util.maxcolor inst r.BD.starts <= 2 * max 1 r.BD.part_colors)

let prop_bdp_valid_and_not_worse =
  Util.qtest ~count:60 "BDP valid and never above BD" Util.gen_inst2 (fun inst ->
      let bd = BD.bd inst in
      let bdp = BD.bdp inst in
      Ivc.Coloring.is_valid inst bdp
      && Util.maxcolor inst bdp <= Util.maxcolor inst bd.BD.starts)

let prop_bd3_within_4rc =
  Util.qtest ~count:30 "3D BD within 4x its per-layer lower bound" Util.gen_inst3
    (fun inst ->
      let r = BD.bd3 inst in
      Ivc.Coloring.is_valid inst r.BD.starts
      && Util.maxcolor inst r.BD.starts <= 4 * max 1 r.BD.lower_bound)

let suite =
  [
    Alcotest.test_case "bd2 valid and bounded" `Quick test_bd2_valid_and_bounded;
    Alcotest.test_case "bd2 2-approx vs exact" `Quick test_bd2_2approx_vs_exact;
    Alcotest.test_case "bd3 valid, 4-approx" `Quick test_bd3_valid_and_4approx;
    Alcotest.test_case "row offsetting structure" `Quick test_row_structure;
    Alcotest.test_case "post never raises a start" `Quick test_post_never_worse_pointwise;
    Alcotest.test_case "post order is a permutation" `Quick test_post_order_dedupes;
    Alcotest.test_case "bdp valid in 3D" `Quick test_bdp_valid_3d;
    Alcotest.test_case "dimension checks" `Quick test_dimension_checks;
    prop_bd_2approx_certificate;
    prop_bdp_valid_and_not_worse;
    prop_bd3_within_4rc;
  ]
